//! Time-resolved telemetry for an experiment run.
//!
//! The flight recorder answers *what happened to one request*; this
//! module answers *where simulated time goes in aggregate*. It wires the
//! whole I/O path into a [`MetricsRegistry`]: per-I/O-node disk queues
//! and busy time, server request queues and thread busy time, mesh
//! bytes-in-flight and NIC occupancy, ART active-list length, prefetch
//! buffer-list occupancy, and the number of compute nodes currently
//! inside a read call. A [`Sampler`] task on the simulation kernel
//! snapshots every gauge at a fixed simulated-time cadence, so the
//! series are a pure function of the seed.
//!
//! On top of the raw snapshot, [`metrics_report`] derives the
//! bottleneck-attribution report: per-component utilizations, a
//! Little's-law consistency cross-check (time-mean concurrency vs
//! throughput × latency), and — when a trace was recorded — agreement
//! between the utilization ranking and the trace-derived access-time
//! decomposition. [`metrics_check`] compares one report against a
//! committed baseline with per-metric tolerance bands: the CI perf gate.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use paragon_core::PrefetchGauges;
use paragon_machine::Machine;
use paragon_metrics::{Json, MetricsRegistry, MetricsSnapshot, Sampler};
use paragon_pfs::ParallelFs;
use paragon_sim::{Sim, SimDuration};

use crate::config::ExperimentConfig;
use crate::result::RunResult;
use crate::spans::{read_spans, SpanBreakdown, SpanKind};

/// Stable dotted metric names. Per-I/O-node instruments derive their
/// names from these via [`ion_metric`]; everything else uses the
/// constant verbatim. `paragon-lint` checks each constant is actually
/// registered or consumed somewhere.
pub mod names {
    /// Gauge: outstanding commands across every disk of one/all arrays.
    pub const DISK_QUEUE: &str = "disk.queue";
    /// Gauge: requests being handled by one/all I/O-node servers.
    pub const SERVER_QUEUE: &str = "server.queue";
    /// Gauge: message bytes currently in mesh transit.
    pub const MESH_INFLIGHT_BYTES: &str = "mesh.inflight_bytes";
    /// Gauge: ARTs on the active FIFO across all compute nodes.
    pub const ART_ACTIVE: &str = "art.active";
    /// Gauge: prefetch buffers held across all open files.
    pub const PREFETCH_BUFFERS: &str = "prefetch.buffers";
    /// Gauge: compute-node bytes those prefetch buffers pin.
    pub const PREFETCH_BYTES: &str = "prefetch.bytes";
    /// Gauge: compute nodes currently inside a read call.
    pub const NODES_IN_IO: &str = "cn.nodes_in_io";
    /// Counter: disk busy nanoseconds, summed over spindles.
    pub const DISK_BUSY_NS: &str = "disk.busy_ns";
    /// Counter: disk commands issued.
    pub const DISK_REQUESTS: &str = "disk.requests";
    /// Counter: server thread-held nanoseconds. A thread stays held
    /// across its disk await, so this covers the service *and* disk
    /// span phases, not server CPU alone.
    pub const SERVER_BUSY_NS: &str = "server.busy_ns";
    /// Counter: bytes the servers read off their file systems.
    pub const SERVER_BYTES_READ: &str = "server.bytes_read";
    /// Counter: mesh payload bytes sent.
    pub const MESH_BYTES: &str = "mesh.bytes";
    /// Counter: mesh messages sent.
    pub const MESH_MESSAGES: &str = "mesh.messages";
    /// Counter: router hops traversed, summed over messages.
    pub const MESH_HOPS: &str = "mesh.hops";
    /// Counter: busiest single NIC's occupancy nanoseconds.
    pub const NIC_BUSY_NS_MAX: &str = "mesh.nic_busy_ns.max";
    /// Counter: NIC occupancy nanoseconds summed over all nodes.
    pub const NIC_BUSY_NS_TOTAL: &str = "mesh.nic_busy_ns.total";
    /// Counter: asynchronous request threads submitted.
    pub const ART_SUBMITTED: &str = "art.submitted";
    /// Counter: asynchronous request threads completed.
    pub const ART_COMPLETED: &str = "art.completed";
    /// Histogram: per-request end-to-end read time, seconds.
    pub const READ_TIME_S: &str = "read.time_s";
    /// Gauge: stripe slots still awaiting re-replication (drains to
    /// exactly zero once a rebuild completes).
    pub const REBUILD_QUEUE: &str = "rebuild.queue";
    /// Counter: bytes the recovery coordinator has re-replicated.
    pub const REBUILD_BYTES: &str = "rebuild.bytes";
    /// Counter: reads that failed over from one replica to another.
    pub const REPLICA_FAILOVERS: &str = "replica.failovers";
    /// Counter: reads served by a non-primary replica.
    pub const REPLICA_READS: &str = "replica.reads";
}

/// The per-I/O-node variant of a metric name: `disk.queue.ion3`.
pub fn ion_metric(base: &str, ion: usize) -> String {
    format!("{base}.ion{ion}")
}

/// One run's telemetry: the registry with every component instrument
/// registered, plus the sampler driving it over the measured phase.
pub struct Telemetry {
    sim: Sim,
    registry: MetricsRegistry,
    cadence: SimDuration,
    sampler: RefCell<Option<Sampler>>,
    /// Wire to node programs: ±1 around every read call.
    pub in_io: Rc<Cell<i64>>,
    /// Wire to every prefetching file via `set_gauges`.
    pub prefetch: PrefetchGauges,
}

impl Telemetry {
    /// Build a registry wired to `machine` and `pfs` and covering the
    /// whole I/O path. Gauges read live `Cell`s, so sampling emits no
    /// events and draws no randomness; counters are polled only at the
    /// measured-phase boundaries, so setup-phase activity (file
    /// population) is excluded from every delta by construction.
    pub fn new(
        sim: &Sim,
        machine: &Rc<Machine>,
        pfs: &Rc<ParallelFs>,
        cadence: SimDuration,
    ) -> Rc<Telemetry> {
        let registry = MetricsRegistry::new();
        let ions = machine.io_nodes();

        // -- Gauges: instantaneous levels, polled every sampler tick. --
        let in_io = registry.gauge_cell(names::NODES_IN_IO);
        let prefetch = PrefetchGauges::default();
        let g = prefetch.entries.clone();
        registry.register_gauge(names::PREFETCH_BUFFERS, move || g.get() as f64);
        let g = prefetch.bytes.clone();
        registry.register_gauge(names::PREFETCH_BYTES, move || g.get() as f64);

        let mut every_disk = Vec::new();
        for i in 0..ions {
            let cells = machine.raid(i).member_queue_cells();
            every_disk.extend(cells.iter().cloned());
            registry.register_gauge(&ion_metric(names::DISK_QUEUE, i), move || {
                cells.iter().map(|c| c.get() as f64).sum()
            });
        }
        registry.register_gauge(names::DISK_QUEUE, move || {
            every_disk.iter().map(|c| c.get() as f64).sum()
        });

        let server_cells = pfs.server_inflight_cells();
        for (i, cell) in server_cells.iter().enumerate() {
            let c = cell.clone();
            registry.register_gauge(&ion_metric(names::SERVER_QUEUE, i), move || c.get() as f64);
        }
        registry.register_gauge(names::SERVER_QUEUE, move || {
            server_cells.iter().map(|c| c.get() as f64).sum()
        });

        let c = pfs.rpc_net().inflight_bytes_cell();
        registry.register_gauge(names::MESH_INFLIGHT_BYTES, move || c.get() as f64);
        let c = pfs.rebuild_pending_cell();
        registry.register_gauge(names::REBUILD_QUEUE, move || c.get() as f64);
        let p = pfs.clone();
        registry.register_gauge(names::ART_ACTIVE, move || p.art_active() as f64);

        // -- Counters: monotone totals, polled at phase boundaries. --
        for i in 0..ions {
            let m = machine.clone();
            registry.register_counter(&ion_metric(names::DISK_BUSY_NS, i), move || {
                m.raid(i)
                    .member_stats()
                    .iter()
                    .map(|s| s.busy.as_nanos() as f64)
                    .sum()
            });
            let p = pfs.clone();
            registry.register_counter(&ion_metric(names::SERVER_BUSY_NS, i), move || {
                p.server_busy_ns()[i] as f64
            });
        }
        let m = machine.clone();
        registry.register_counter(names::DISK_BUSY_NS, move || {
            (0..ions)
                .flat_map(|i| m.raid(i).member_stats())
                .map(|s| s.busy.as_nanos() as f64)
                .sum()
        });
        let m = machine.clone();
        registry.register_counter(names::DISK_REQUESTS, move || {
            (0..ions).map(|i| m.raid(i).stats().requests as f64).sum()
        });
        let p = pfs.clone();
        registry.register_counter(names::SERVER_BUSY_NS, move || {
            p.server_busy_ns().iter().map(|&n| n as f64).sum()
        });
        let p = pfs.clone();
        registry.register_counter(names::SERVER_BYTES_READ, move || {
            p.total_bytes_served() as f64
        });
        let p = pfs.clone();
        registry.register_counter(names::MESH_BYTES, move || {
            p.rpc_net().mesh_stats().bytes as f64
        });
        let p = pfs.clone();
        registry.register_counter(names::MESH_MESSAGES, move || {
            p.rpc_net().mesh_stats().messages as f64
        });
        let p = pfs.clone();
        registry.register_counter(names::MESH_HOPS, move || {
            p.rpc_net().mesh_stats().hops as f64
        });
        let p = pfs.clone();
        registry.register_counter(names::NIC_BUSY_NS_MAX, move || {
            p.rpc_net().nic_busy_ns().into_iter().max().unwrap_or(0) as f64
        });
        let p = pfs.clone();
        registry.register_counter(names::NIC_BUSY_NS_TOTAL, move || {
            p.rpc_net().nic_busy_ns().iter().map(|&n| n as f64).sum()
        });
        let p = pfs.clone();
        registry.register_counter(names::ART_SUBMITTED, move || p.art_stats().submitted as f64);
        let p = pfs.clone();
        registry.register_counter(names::ART_COMPLETED, move || p.art_stats().completed as f64);
        let c = pfs.rebuild_bytes_cell();
        registry.register_counter(names::REBUILD_BYTES, move || c.get() as f64);
        let c = pfs.replica_failovers_cell();
        registry.register_counter(names::REPLICA_FAILOVERS, move || c.get() as f64);
        let c = pfs.replica_reads_cell();
        registry.register_counter(names::REPLICA_READS, move || c.get() as f64);

        Rc::new(Telemetry {
            sim: sim.clone(),
            registry,
            cadence,
            sampler: RefCell::new(None),
            in_io,
            prefetch,
        })
    }

    /// Start the measured phase: counters are baselined and the sampler
    /// task begins ticking at the configured cadence.
    pub fn begin(&self) {
        self.registry.mark_phase_start(self.sim.now().as_nanos());
        *self.sampler.borrow_mut() = Some(Sampler::start(&self.sim, &self.registry, self.cadence));
    }

    /// End the measured phase: the sampler is stopped (its pending
    /// wakeup exits without sampling) and counter finals are taken.
    pub fn end(&self) {
        if let Some(s) = self.sampler.borrow_mut().take() {
            s.stop();
        }
        self.registry.finish(self.sim.now().as_nanos());
    }

    /// Record one histogram sample (post-run, from per-request data).
    pub fn record(&self, name: &str, v: f64) {
        self.registry.record(name, v);
    }

    /// Freeze the run's telemetry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Spindles per I/O node under `cfg` (data members + optional parity).
fn spindles_per_ion(cfg: &ExperimentConfig) -> usize {
    cfg.calib.raid_members + usize::from(cfg.calib.raid_parity)
}

/// Build the bottleneck-attribution report for an instrumented run.
///
/// The report's `"scalars"` object is the perf-gate surface: flat
/// `name → number`, compared against a committed baseline by
/// [`metrics_check`]. Everything else (`series`, `counters`,
/// `histograms`, `meta`) is context for humans and renderers.
pub fn metrics_report(cfg: &ExperimentConfig, result: &RunResult) -> Json {
    let snap = result
        .metrics
        .clone()
        .expect("metrics_report needs a run with metrics_cadence set");
    let elapsed_ns = snap.phase_end_ns.saturating_sub(snap.phase_start_ns).max(1) as f64;
    let elapsed_s = snap.elapsed_s().max(1e-12);
    let cn = cfg.compute_nodes as f64;
    let ions = cfg.io_nodes as f64;
    let delta = |name: &str| snap.counters.get(name).copied().unwrap_or(0.0);

    // Component utilizations: busy time over capacity × elapsed.
    let spindles = (spindles_per_ion(cfg) * cfg.io_nodes).max(1) as f64;
    let util_disk = delta(names::DISK_BUSY_NS) / (spindles * elapsed_ns);
    let threads = (cfg.calib.server_threads * cfg.io_nodes).max(1) as f64;
    let util_server = delta(names::SERVER_BUSY_NS) / (threads * elapsed_ns);
    let util_mesh = delta(names::NIC_BUSY_NS_MAX) / elapsed_ns;
    let art_mean = snap.series_time_mean(names::ART_ACTIVE).unwrap_or(0.0);
    let util_art = art_mean / (cn * cfg.calib.max_arts.max(1) as f64);
    let reads: u64 = result.per_node.iter().map(|n| n.reads).sum();
    let util_compute = cfg.delay.as_nanos() as f64 * reads as f64 / (cn * elapsed_ns);

    // Little's law at the client station: L = time-mean concurrency,
    // λ = completed reads per second, W = mean end-to-end read time.
    // L ≈ λW when the gauges, the counters, and the per-request timers
    // agree about the same run — the internal-consistency cross-check.
    let l = snap.series_time_mean(names::NODES_IN_IO).unwrap_or(0.0);
    let lambda = reads as f64 / elapsed_s;
    let spans = read_spans(&result.trace);
    let demand: Vec<_> = spans
        .iter()
        .filter(|s| s.kind != SpanKind::Prefetch)
        .cloned()
        .collect();
    let w = if demand.is_empty() {
        result.read_time_mean().as_secs_f64()
    } else {
        demand.iter().map(|s| s.total().as_secs_f64()).sum::<f64>() / demand.len() as f64
    };
    let littles_ratio = if lambda * w > 0.0 {
        l / (lambda * w)
    } else {
        1.0
    };

    // Bottleneck attribution: rank components by utilization, then
    // cross-check the hardware ranking (disk/server/mesh) against the
    // trace-derived span decomposition: the busiest component should
    // own the largest share of the end-to-end access time.
    let mut ranking = [
        ("disk", util_disk),
        ("server", util_server),
        ("mesh", util_mesh),
        ("art", util_art),
        ("cn_compute", util_compute),
    ];
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let consistent = span_consistency(&demand, util_disk, util_mesh);

    let mut scalars = std::collections::BTreeMap::new();
    let mut put = |k: &str, v: f64| {
        scalars.insert(k.to_string(), Json::Num(v));
    };
    put("bandwidth_mb_s", result.bandwidth_mb_s());
    put("read_time_mean_s", result.read_time_mean().as_secs_f64());
    put("elapsed_s", elapsed_s);
    put("util.disk", util_disk);
    put("util.server", util_server);
    put("util.mesh", util_mesh);
    put("util.art", util_art);
    put("util.cn_compute", util_compute);
    put("littles_law.l", l);
    put("littles_law.lambda_per_s", lambda);
    put("littles_law.w_s", w);
    put("littles_law.ratio", littles_ratio);
    put("bottleneck.consistent", f64::from(consistent));
    put(
        "prefetch.hit_ratio",
        if result.prefetch_enabled {
            result.prefetch.hit_ratio()
        } else {
            0.0
        },
    );
    // Replication scalars are gated on the redundancy mode so that
    // baseline reports committed before replication existed stay
    // byte-compatible with every non-replicated run.
    if matches!(cfg.redundancy, paragon_pfs::Redundancy::Replicated { .. }) {
        put("replica.failovers", result.replica_failovers as f64);
        put("replica.reads", result.replica_reads as f64);
        put("rebuild.pending_end", result.rebuild_pending as f64);
        put(
            "rebuild.bytes",
            result
                .rebuild
                .as_ref()
                .map_or(0.0, |r| r.bytes_copied as f64),
        );
    }

    let mut meta = std::collections::BTreeMap::new();
    meta.insert("seed".into(), Json::Num(cfg.seed as f64));
    meta.insert("compute_nodes".into(), Json::Num(cn));
    meta.insert("io_nodes".into(), Json::Num(ions));
    meta.insert("request_size".into(), Json::Num(cfg.request_size as f64));
    meta.insert("file_size".into(), Json::Num(cfg.file_size as f64));
    meta.insert("prefetch".into(), Json::Bool(result.prefetch_enabled));
    meta.insert(
        "cadence_ns".into(),
        Json::Num(cfg.metrics_cadence.map_or(0, SimDuration::as_nanos) as f64),
    );
    meta.insert("samples".into(), Json::Num(snap.times_ns.len() as f64));

    let mut bottleneck = std::collections::BTreeMap::new();
    bottleneck.insert(
        "ranking".into(),
        Json::Arr(
            ranking
                .iter()
                .map(|(n, _)| Json::Str((*n).to_string()))
                .collect(),
        ),
    );
    bottleneck.insert("top".into(), Json::Str(ranking[0].0.to_string()));

    let mut counters = std::collections::BTreeMap::new();
    for (k, v) in &snap.counters {
        counters.insert(k.clone(), Json::Num(*v));
    }
    let mut series = std::collections::BTreeMap::new();
    series.insert(
        "times_ns".into(),
        Json::Arr(snap.times_ns.iter().map(|&t| Json::Num(t as f64)).collect()),
    );
    for (k, vals) in &snap.series {
        series.insert(
            k.clone(),
            Json::Arr(vals.iter().map(|&v| Json::Num(v)).collect()),
        );
    }
    let mut histograms = std::collections::BTreeMap::new();
    for (k, h) in &snap.hists {
        histograms.insert(k.clone(), h.to_json());
    }

    let mut root = std::collections::BTreeMap::new();
    root.insert("meta".into(), Json::Obj(meta));
    root.insert("scalars".into(), Json::Obj(scalars));
    root.insert("bottleneck".into(), Json::Obj(bottleneck));
    root.insert("counters".into(), Json::Obj(counters));
    root.insert("series".into(), Json::Obj(series));
    root.insert("histograms".into(), Json::Obj(histograms));
    Json::Obj(root)
}

/// Does the utilization ranking agree with the trace-derived span
/// decomposition? Only the two layers with non-overlapping attribution
/// are compared — disk utilization ↔ the disk span phase, mesh (NIC)
/// utilization ↔ request + reply transit — because the other stations
/// nest: a server thread stays held across the disk command, and an ART
/// is active across mesh, server, and disk. The busier hardware layer by
/// counters must also own more of the end-to-end access time by trace.
/// With no spans recorded the check is vacuously true.
fn span_consistency(demand: &[crate::spans::ReadSpan], disk: f64, mesh: f64) -> bool {
    if demand.is_empty() {
        return true;
    }
    let b = SpanBreakdown::of(demand);
    let phase = |h: &paragon_metrics::Histogram| h.mean().unwrap_or(0.0) * h.len() as f64;
    let time_disk = phase(&b.disk);
    let time_mesh = phase(&b.request) + phase(&b.reply);
    (disk >= mesh) == (time_disk >= time_mesh)
}

/// Compare a current report's `"scalars"` against a committed baseline.
///
/// Per-metric tolerance bands: utilizations (names starting `util.`)
/// and ratios (names ending `.ratio`) are compared absolutely within
/// 0.05; a zero baseline demands an exact zero; everything else is
/// relative within 10%. `tolerance` overrides the band width for every
/// metric (relative, with the same width used absolutely for the
/// utilization/ratio class and zero baselines). Missing or extra
/// scalars are violations too. Empty result = gate passes.
///
/// Exception: host-measured bench scalars (names starting `bench.`)
/// are one-sided throughput floors. They only appear in reports
/// produced with `--bench`, so a current report without them passes,
/// and running faster than baseline is never a regression; a current
/// value below `baseline × (1 − allowed_drop)` fails, where the
/// allowed fractional drop defaults to 0.75 (i.e. the floor sits at
/// 25% of baseline — wide on purpose, because wall-clock throughput
/// varies across host machines) and `tolerance` overrides it.
///
/// [`PARALLEL_SPEEDUP_SCALAR`] is the one bench scalar gated against an
/// *absolute* floor instead of the baseline: the parallel kernel must
/// run the 512×64 bench shape at least [`PARALLEL_SPEEDUP_FLOOR`]×
/// faster on four workers than on one, wherever the report was
/// produced. It only appears in reports from hosts with enough cores to
/// run the parallel trial, so it is absent-safe in both directions (a
/// baseline without it accepts a current report that has it, and vice
/// versa) and needs no committed baseline value.
///
/// The kernel self-profile's `bench.kernel.*` scalars (declared in
/// `paragon_profile::names`) follow the same absent-safe rule: they are
/// host-measured and only exported when `--bench` runs the self-profiled
/// trial. Of them, only the barrier-stall fraction is gated — absolutely,
/// against the one-sided [`KERNEL_STALL_CEILING`]; the rest are
/// informational.
pub fn metrics_check(current: &Json, baseline: &Json, tolerance: Option<f64>) -> Vec<String> {
    let mut violations = Vec::new();
    let empty = std::collections::BTreeMap::new();
    let cur = current
        .get("scalars")
        .and_then(Json::as_obj)
        .unwrap_or(&empty);
    let base = baseline
        .get("scalars")
        .and_then(Json::as_obj)
        .unwrap_or(&empty);
    if base.is_empty() {
        violations.push("baseline has no scalars object".into());
    }
    if let Some(c) = cur.get(PARALLEL_SPEEDUP_SCALAR).and_then(Json::as_f64) {
        if c < PARALLEL_SPEEDUP_FLOOR {
            violations.push(format!(
                "{PARALLEL_SPEEDUP_SCALAR}: {c} below the absolute floor \
                 {PARALLEL_SPEEDUP_FLOOR}"
            ));
        }
    }
    if let Some(c) = cur
        .get(paragon_profile::names::KERNEL_BARRIER_STALL_FRAC)
        .and_then(Json::as_f64)
    {
        if c > KERNEL_STALL_CEILING {
            violations.push(format!(
                "{}: {c} above the absolute ceiling {KERNEL_STALL_CEILING}",
                paragon_profile::names::KERNEL_BARRIER_STALL_FRAC
            ));
        }
    }
    for (name, bval) in base {
        let Some(b) = bval.as_f64() else { continue };
        if name == PARALLEL_SPEEDUP_SCALAR {
            continue; // gated absolutely against the current report above
        }
        if name.starts_with(KERNEL_SCALAR_PREFIX) {
            // Kernel self-profile scalars are host-measured and only
            // present when `--bench` ran the self-profiled trial; the
            // stall fraction is gated absolutely above, the rest are
            // informational. Absent-safe in both directions.
            continue;
        }
        if name.starts_with("bench.") {
            if let Some(c) = cur.get(name).and_then(Json::as_f64) {
                let allowed_drop = tolerance.unwrap_or(0.75).min(1.0);
                let floor = b * (1.0 - allowed_drop);
                if c < floor {
                    violations.push(format!(
                        "{name}: {c} below floor {floor:.6} \
                         (baseline {b}, allowed drop {allowed_drop})"
                    ));
                }
            }
            continue;
        }
        let Some(c) = cur.get(name).and_then(Json::as_f64) else {
            violations.push(format!("missing scalar {name} (baseline {b})"));
            continue;
        };
        let absolute_class = name.starts_with("util.") || name.ends_with(".ratio");
        let (limit, style) = if absolute_class {
            (tolerance.unwrap_or(0.05), "absolute")
        } else if b == 0.0 {
            (tolerance.unwrap_or(0.0), "absolute")
        } else {
            (tolerance.unwrap_or(0.10) * b.abs(), "relative")
        };
        let diff = (c - b).abs();
        if diff > limit {
            violations.push(format!(
                "{name}: {c} vs baseline {b} ({style} diff {diff:.6} > {limit:.6})"
            ));
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name)
            && name != PARALLEL_SPEEDUP_SCALAR
            && !name.starts_with(KERNEL_SCALAR_PREFIX)
        {
            violations.push(format!("unexpected scalar {name} not in baseline"));
        }
    }
    violations
}

/// Name prefix of the kernel self-profile's scalars (declared in
/// `paragon_profile::names`): absent-safe in both directions in
/// [`metrics_check`], because they are host-measured and only exported
/// when `--bench` runs the self-profiled trial.
const KERNEL_SCALAR_PREFIX: &str = "bench.kernel.";

/// Absolute one-sided ceiling for
/// [`paragon_profile::names::KERNEL_BARRIER_STALL_FRAC`]: if workers
/// spend more than this fraction of their summed host time parked at
/// epoch barriers, the shard cut (or the lookahead) has degenerated to
/// lockstep serialization and the parallel kernel is doing no useful
/// overlapping work. Wide on purpose — tiny CI shapes stall much more
/// than full-machine shapes — so only a pathological regression trips.
pub const KERNEL_STALL_CEILING: f64 = 0.95;

/// Host-timed scalar `--bench` adds on multicore hosts: how much faster
/// the sharded bench shape runs on four workers than on one. See
/// [`metrics_check`] for its gating rules.
pub const PARALLEL_SPEEDUP_SCALAR: &str = "bench.parallel_speedup";

/// Absolute one-sided floor for [`PARALLEL_SPEEDUP_SCALAR`]: four
/// workers must at least halve the sharded bench shape's host time.
pub const PARALLEL_SPEEDUP_FLOOR: f64 = 2.0;

/// Render the report for humans: a utilization table, the bottleneck
/// line, Little's-law numbers, and queue-depth profiles as ASCII charts.
pub fn render_report(report: &Json) -> String {
    use paragon_metrics::{AsciiChart, Series, Table};
    let scalar = |name: &str| {
        report
            .get("scalars")
            .and_then(|s| s.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let mut out = String::new();

    let mut t = Table::new(
        "component utilization (measured phase)",
        &["component", "utilization"],
    );
    for name in ["disk", "server", "mesh", "art", "cn_compute"] {
        t.row(&[
            name.to_string(),
            format!("{:.4}", scalar(&format!("util.{name}"))),
        ]);
    }
    out.push_str(&t.render());
    let top = report
        .get("bottleneck")
        .and_then(|b| b.get("top"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    out.push_str(&format!(
        "\nbottleneck: {top}   (ranking consistent with trace spans: {})\n",
        if scalar("bottleneck.consistent") == 1.0 {
            "yes"
        } else {
            "NO"
        }
    ));
    out.push_str(&format!(
        "bandwidth: {:.2} MB/s   mean read: {:.3} ms   Little's law L/(λW) = {:.3}\n",
        scalar("bandwidth_mb_s"),
        scalar("read_time_mean_s") * 1e3,
        scalar("littles_law.ratio"),
    ));
    // The cross-check's W is a mean; the distribution behind it matters
    // just as much (a fat p99 with a healthy mean is the classic
    // stuck-in-a-queue signature), so the read-time percentiles ride
    // along on the same line group.
    let hists = report.get("histograms").and_then(Json::as_obj);
    if let Some(h) = hists.and_then(|hs| hs.get(names::READ_TIME_S)) {
        let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "read.time_s percentiles: p50 {:.3} ms   p90 {:.3} ms   p99 {:.3} ms   max {:.3} ms   (n = {})\n",
            f("p50") * 1e3,
            f("p90") * 1e3,
            f("p99") * 1e3,
            f("max") * 1e3,
            f("count") as u64,
        ));
    }
    out.push('\n');

    // Every recorded distribution, through its tail.
    if let Some(hs) = hists.filter(|hs| !hs.is_empty()) {
        let mut t = Table::new(
            "histograms (measured phase)",
            &["name", "count", "mean", "p50", "p90", "p99", "max"],
        );
        for (name, h) in hs {
            let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            t.row(&[
                name.clone(),
                format!("{}", f("count") as u64),
                format!("{:.6}", f("mean")),
                format!("{:.6}", f("p50")),
                format!("{:.6}", f("p90")),
                format!("{:.6}", f("p99")),
                format!("{:.6}", f("max")),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }

    // Queue-depth / occupancy profiles over the measured phase.
    if let Some(series) = report.get("series").and_then(Json::as_obj) {
        let times: Vec<f64> = series
            .get("times_ns")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_f64)
                    .map(|t| t * 1e-9)
                    .collect()
            })
            .unwrap_or_default();
        let points = |name: &str| -> Vec<(f64, f64)> {
            series
                .get(name)
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_f64)
                        .zip(times.iter().copied())
                        .map(|(v, t)| (t, v))
                        .collect()
                })
                .unwrap_or_default()
        };
        let chart = AsciiChart::new("queue depths over time", "simulated seconds", "depth")
            .series(Series::new(names::DISK_QUEUE, points(names::DISK_QUEUE)))
            .series(Series::new(
                names::SERVER_QUEUE,
                points(names::SERVER_QUEUE),
            ))
            .series(Series::new(names::NODES_IN_IO, points(names::NODES_IN_IO)));
        out.push_str(&chart.render());
        let pf = points(names::PREFETCH_BUFFERS);
        if pf.iter().any(|&(_, v)| v != 0.0) {
            let chart =
                AsciiChart::new("prefetch buffers over time", "simulated seconds", "buffers")
                    .series(Series::new(names::PREFETCH_BUFFERS, pf));
            out.push('\n');
            out.push_str(&chart.render());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StripeLayout;
    use paragon_machine::Calibration;
    use paragon_pfs::IoMode;
    use std::collections::BTreeMap;

    /// A small paper-calibrated config: real service times, so queues
    /// form, utilizations are meaningful, and the sampler gets to tick.
    fn instrumented() -> ExperimentConfig {
        ExperimentConfig {
            seed: 11,
            compute_nodes: 2,
            io_nodes: 2,
            calib: Calibration::paragon_1995(),
            mode: IoMode::MRecord,
            fast_path: true,
            stripe_unit: 16 * 1024,
            layout: StripeLayout::Across { factor: 2 },
            request_size: 16 * 1024,
            file_size: 512 * 1024,
            delay: SimDuration::ZERO,
            prefetch: None,
            access: crate::config::AccessPattern::ModeDriven,
            separate_files: false,
            verify_data: false,
            trace_cap: 1 << 18,
            faults: crate::config::FaultSpec::default(),
            redundancy: paragon_pfs::Redundancy::None,
            metrics_cadence: Some(SimDuration::from_millis(20)),
            shards: None,
            workers: 1,
        }
    }

    #[test]
    fn instrumented_run_profiles_the_io_path() {
        let cfg = instrumented();
        let r = crate::run(&cfg);
        let snap = r.metrics.as_ref().expect("metrics on");
        assert!(snap.times_ns.len() > 2, "sampler never ticked");
        for g in [
            names::DISK_QUEUE,
            names::SERVER_QUEUE,
            names::MESH_INFLIGHT_BYTES,
            names::ART_ACTIVE,
            names::NODES_IN_IO,
            names::PREFETCH_BYTES,
        ] {
            assert!(snap.series.contains_key(g), "missing gauge series {g}");
        }
        // The workload drives real disk and mesh work in the phase.
        assert!(snap.counters[names::DISK_BUSY_NS] > 0.0);
        assert!(snap.counters[names::MESH_BYTES] > 0.0);
        assert!(snap.counters[names::MESH_HOPS] > 0.0);
        assert!(snap.counters[&ion_metric(names::DISK_BUSY_NS, 0)] > 0.0);
        assert!(snap.series_max(names::NODES_IN_IO).unwrap_or(0.0) > 0.0);
        // An I/O-bound run keeps nodes inside read calls nearly all the
        // time, and Little's law ties the three measurements together.
        let report = metrics_report(&cfg, &r);
        let scalar = |n: &str| {
            report
                .get("scalars")
                .and_then(|s| s.get(n))
                .and_then(Json::as_f64)
                .unwrap()
        };
        let util_disk = scalar("util.disk");
        assert!(util_disk > 0.0 && util_disk <= 1.0, "util.disk {util_disk}");
        let ratio = scalar("littles_law.ratio");
        assert!(
            (0.7..=1.3).contains(&ratio),
            "Little's-law cross-check failed: {ratio}"
        );
        assert_eq!(scalar("bottleneck.consistent"), 1.0);
        // A report always passes its own gate.
        assert!(metrics_check(&report, &report, None).is_empty());
        let text = render_report(&report);
        assert!(text.contains("bottleneck:"));
        assert!(text.contains("queue depths over time"));
        // The read-time distribution is printed through its tail, next
        // to the Little's-law cross-check it contextualizes.
        assert!(
            text.contains("read.time_s percentiles: p50"),
            "missing percentile line:\n{text}"
        );
        assert!(text.contains("p99"), "percentiles stop short of p99");
        assert!(
            text.contains("histograms (measured phase)"),
            "missing histogram table:\n{text}"
        );
    }

    #[test]
    fn instrumented_runs_are_deterministic_and_leak_free() {
        // Balanced workload: the compute delay lets prefetched buffers
        // sit in the list long enough for sampler ticks to see them
        // (I/O-bound depth-1 buffers are consumed the moment they land).
        let mut cfg = instrumented().with_prefetch();
        cfg.delay = SimDuration::from_millis(15);
        let a = crate::run(&cfg);
        let b = crate::run(&cfg);
        assert_eq!(a.trace_hash, b.trace_hash);
        // Byte-identical reports: the JSON the perf gate diffs.
        let ja = metrics_report(&cfg, &a).pretty();
        let jb = metrics_report(&cfg, &b).pretty();
        assert_eq!(ja, jb, "same seed must render identical report JSON");
        // Prefetch buffers were held mid-run and all freed at close.
        let snap = a.metrics.unwrap();
        let bytes = &snap.series[names::PREFETCH_BYTES];
        assert!(
            snap.series_max(names::PREFETCH_BYTES).unwrap() > 0.0,
            "prefetch never held a buffer"
        );
        assert_eq!(
            *bytes.last().unwrap(),
            0.0,
            "close leaked prefetch buffer bytes"
        );
        assert_eq!(*snap.series[names::PREFETCH_BUFFERS].last().unwrap(), 0.0);
    }

    fn report_with(scalars: &[(&str, f64)]) -> Json {
        let mut s = BTreeMap::new();
        for (k, v) in scalars {
            s.insert((*k).to_string(), Json::Num(*v));
        }
        let mut root = BTreeMap::new();
        root.insert("scalars".into(), Json::Obj(s));
        Json::Obj(root)
    }

    #[test]
    fn check_passes_identical_reports() {
        let r = report_with(&[("util.disk", 0.8), ("bandwidth_mb_s", 3.2)]);
        assert!(metrics_check(&r, &r, None).is_empty());
    }

    #[test]
    fn check_applies_absolute_band_to_utilizations_and_ratios() {
        let base = report_with(&[("util.disk", 0.80), ("littles_law.ratio", 1.00)]);
        let ok = report_with(&[("util.disk", 0.84), ("littles_law.ratio", 0.96)]);
        assert!(metrics_check(&ok, &base, None).is_empty());
        let bad = report_with(&[("util.disk", 0.86), ("littles_law.ratio", 1.00)]);
        let v = metrics_check(&bad, &base, None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("util.disk"));
    }

    #[test]
    fn check_applies_relative_band_elsewhere_and_exact_zero() {
        let base = report_with(&[("bandwidth_mb_s", 10.0), ("read_errors", 0.0)]);
        let ok = report_with(&[("bandwidth_mb_s", 10.9), ("read_errors", 0.0)]);
        assert!(metrics_check(&ok, &base, None).is_empty());
        let drift = report_with(&[("bandwidth_mb_s", 8.5), ("read_errors", 0.0)]);
        assert_eq!(metrics_check(&drift, &base, None).len(), 1);
        let nonzero = report_with(&[("bandwidth_mb_s", 10.0), ("read_errors", 1.0)]);
        assert_eq!(metrics_check(&nonzero, &base, None).len(), 1);
    }

    #[test]
    fn check_flags_missing_and_extra_scalars() {
        let base = report_with(&[("a", 1.0), ("b", 2.0)]);
        let cur = report_with(&[("a", 1.0), ("c", 3.0)]);
        let v = metrics_check(&cur, &base, None);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing scalar b")));
        assert!(v.iter().any(|m| m.contains("unexpected scalar c")));
    }

    #[test]
    fn check_treats_bench_scalars_as_one_sided_floors() {
        let base = report_with(&[("a", 1.0), ("bench.sim_io_bytes_per_host_second", 100.0)]);
        // Absent from the current report (a run without --bench): passes.
        assert!(metrics_check(&report_with(&[("a", 1.0)]), &base, None).is_empty());
        // Faster than baseline is never a regression; 30% of baseline
        // still clears the default 25% floor.
        let fast = report_with(&[("a", 1.0), ("bench.sim_io_bytes_per_host_second", 900.0)]);
        assert!(metrics_check(&fast, &base, None).is_empty());
        let slow_ok = report_with(&[("a", 1.0), ("bench.sim_io_bytes_per_host_second", 30.0)]);
        assert!(metrics_check(&slow_ok, &base, None).is_empty());
        // Below the floor: one violation, naming the floor.
        let slow = report_with(&[("a", 1.0), ("bench.sim_io_bytes_per_host_second", 20.0)]);
        let v = metrics_check(&slow, &base, None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("below floor"));
        // Tolerance overrides the allowed drop (here: only 10% slack).
        assert_eq!(metrics_check(&slow_ok, &base, Some(0.10)).len(), 1);
    }

    #[test]
    fn check_gates_parallel_speedup_against_an_absolute_floor() {
        let base = report_with(&[("a", 1.0)]);
        // Absent from the current report (a host too small to run the
        // parallel trial): passes, and is never "missing".
        assert!(metrics_check(&report_with(&[("a", 1.0)]), &base, None).is_empty());
        // Present but absent from the baseline: not an "unexpected
        // scalar" — the floor is absolute, no committed value needed.
        let fast = report_with(&[("a", 1.0), (PARALLEL_SPEEDUP_SCALAR, 3.1)]);
        assert!(metrics_check(&fast, &base, None).is_empty());
        // Below the floor fails wherever the report came from, even if
        // a stale baseline recorded a worse value.
        let slow = report_with(&[("a", 1.0), (PARALLEL_SPEEDUP_SCALAR, 1.4)]);
        let v = metrics_check(&slow, &base, None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("absolute floor"));
        let stale = report_with(&[("a", 1.0), (PARALLEL_SPEEDUP_SCALAR, 0.9)]);
        assert_eq!(metrics_check(&slow, &stale, None).len(), 1);
    }

    #[test]
    fn check_gates_kernel_stall_frac_against_an_absolute_ceiling() {
        use paragon_profile::names::{KERNEL_BARRIER_STALL_FRAC, KERNEL_EPOCHS};
        let base = report_with(&[("a", 1.0)]);
        // Kernel self-profile scalars are host-measured and absent-safe
        // in both directions: present only in the current report they
        // are not "unexpected", present only in the baseline they are
        // not "missing".
        let cur = report_with(&[
            ("a", 1.0),
            (KERNEL_BARRIER_STALL_FRAC, 0.4),
            (KERNEL_EPOCHS, 12.0),
        ]);
        assert!(metrics_check(&cur, &base, None).is_empty());
        assert!(metrics_check(&report_with(&[("a", 1.0)]), &cur, None).is_empty());
        // The stall fraction alone has an absolute one-sided ceiling.
        let stalled = report_with(&[("a", 1.0), (KERNEL_BARRIER_STALL_FRAC, 0.99)]);
        let v = metrics_check(&stalled, &base, None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("absolute ceiling"));
        // And the ceiling holds even against a stale worse baseline.
        assert_eq!(metrics_check(&stalled, &stalled, None).len(), 1);
    }

    #[test]
    fn tolerance_override_widens_every_band() {
        let base = report_with(&[("util.disk", 0.5), ("bandwidth_mb_s", 10.0)]);
        let cur = report_with(&[("util.disk", 0.7), ("bandwidth_mb_s", 13.0)]);
        assert!(!metrics_check(&cur, &base, None).is_empty());
        assert!(metrics_check(&cur, &base, Some(0.35)).is_empty());
    }

    #[test]
    fn ion_metric_names_are_stable() {
        assert_eq!(ion_metric(names::DISK_QUEUE, 3), "disk.queue.ion3");
        assert_eq!(ion_metric(names::SERVER_BUSY_NS, 0), "server.busy_ns.ion0");
    }
}
