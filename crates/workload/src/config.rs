//! Experiment configuration.
//!
//! One [`ExperimentConfig`] fully determines a run: machine shape,
//! calibration, file layout, access mode/pattern, request size, the
//! compute delay between reads (the paper's balanced-workload knob), and
//! whether the prototype prefetcher is enabled. Identical configs (same
//! seed) produce identical results — the determinism tests rely on it.

use paragon_core::PrefetchConfig;
use paragon_machine::Calibration;
use paragon_pfs::{IoMode, Redundancy, StripeAttrs};
use paragon_sim::SimDuration;

/// How the shared file is striped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StripeLayout {
    /// One slot on each of the first `factor` I/O nodes.
    Across { factor: usize },
    /// `ways` slots, all on I/O node `ion` (Table 4's second config).
    WaysOnOne { ways: usize, ion: usize },
}

impl StripeLayout {
    /// Materialize into stripe attributes.
    pub fn attrs(&self, stripe_unit: u64) -> StripeAttrs {
        match *self {
            StripeLayout::Across { factor } => StripeAttrs::across(factor, stripe_unit),
            StripeLayout::WaysOnOne { ways, ion } => {
                StripeAttrs::ways_on_one(ways, ion, stripe_unit)
            }
        }
    }
}

/// Access pattern each node's program follows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Follow the open mode's pointer semantics (the paper's workloads).
    ModeDriven,
    /// Positioned reads at `base + k·stride` within the node's partition.
    Strided { stride: u64 },
    /// Positioned reads at uniform block-aligned offsets in the node's
    /// partition (defeats sequential predictors by construction).
    Random,
    /// Read the node's partition sequentially `passes` times (temporal
    /// locality for the buffered-mount ablation).
    Reread { passes: u32 },
}

/// Deterministic faults injected during the measured phase. The plan is
/// configured and armed after setup (population never draws a fault), and
/// all probabilistic draws come off the run's master seed — identical
/// configs produce identical fault sequences.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Per-mille probability that any disk read fails transiently.
    pub disk_error_pm: u32,
    /// Kill one RAID data member for the whole measured phase:
    /// `(io_node index, member index)`. Reads survive only if the
    /// calibration carries a parity member (`raid_parity`).
    pub dead_member: Option<(usize, usize)>,
    /// Per-mille mesh message drop rate.
    pub mesh_drop_pm: u32,
    /// Per-mille mesh message duplication rate.
    pub mesh_dup_pm: u32,
    /// Per-mille mesh message delay rate.
    pub mesh_delay_pm: u32,
    /// Extra latency a delayed message pays.
    pub mesh_delay: SimDuration,
    /// Crash one I/O node for a window of the measured phase:
    /// `(io_node index, from, until)`, offsets relative to the measured
    /// phase's start.
    pub ion_crash: Option<(usize, SimDuration, SimDuration)>,
}

impl FaultSpec {
    /// True when this spec injects nothing.
    pub fn is_noop(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// One experiment run, fully specified.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed (drives every RNG in the simulation).
    pub seed: u64,
    /// Compute nodes.
    pub compute_nodes: usize,
    /// I/O nodes.
    pub io_nodes: usize,
    /// Timing calibration.
    pub calib: Calibration,
    /// I/O mode the shared file is opened in.
    pub mode: IoMode,
    /// Fast Path (buffer-cache bypass) on the servers.
    pub fast_path: bool,
    /// Stripe unit size, bytes.
    pub stripe_unit: u64,
    /// Stripe layout.
    pub layout: StripeLayout,
    /// Per-request size, bytes.
    pub request_size: u32,
    /// Total logical file size, bytes (per-file when `separate_files`).
    pub file_size: u64,
    /// Compute time between consecutive reads of one node.
    pub delay: SimDuration,
    /// Prototype prefetcher; `None` = stock PFS.
    pub prefetch: Option<PrefetchConfig>,
    /// Access pattern.
    pub access: AccessPattern,
    /// Each node opens its own file instead of sharing one.
    pub separate_files: bool,
    /// Verify returned bytes against the populated pattern (only checked
    /// for deterministic-offset patterns).
    pub verify_data: bool,
    /// Record up to this many trace events (0 = tracing off).
    pub trace_cap: usize,
    /// Faults to inject during the measured phase.
    pub faults: FaultSpec,
    /// Mount-level redundancy: single-copy striping (`None`, the paper's
    /// layout), per-I/O-node parity RAID (`ParityRaid`, forces
    /// `calib.raid_parity`), or cross-I/O-node replication
    /// (`Replicated { rf }`; an I/O-node crash triggers online
    /// re-replication under the foreground load).
    pub redundancy: Redundancy,
    /// Sample telemetry gauges every this much simulated time during the
    /// measured phase; `None` = telemetry off (zero overhead, unchanged
    /// event stream).
    pub metrics_cadence: Option<SimDuration>,
    /// Shard-world count for the parallel kernel; `None` = pick by
    /// machine size (1 below 1024 compute nodes, so every historical
    /// config runs the classic serial kernel). A run's bytes depend on
    /// the *resolved* shard count, never on `workers`.
    pub shards: Option<usize>,
    /// Host worker threads driving the shard worlds: `1` = drive them all
    /// from the calling thread, `0` = one per host core. Pure host-side
    /// mapping — cannot affect simulation results.
    pub workers: usize,
}

impl ExperimentConfig {
    /// The paper's I/O-bound M_RECORD workload on the 8+8 testbed:
    /// 64 KB blocks, stripe unit 64 KB over all 8 I/O nodes, no delays,
    /// `file_mb_per_node` MB of file per compute node.
    pub fn paper_iobound(request_size: u32, file_mb_per_node: u64) -> Self {
        let compute_nodes = 8;
        ExperimentConfig {
            seed: 42,
            compute_nodes,
            io_nodes: 8,
            calib: Calibration::paragon_1995(),
            mode: IoMode::MRecord,
            fast_path: true,
            stripe_unit: 64 * 1024,
            layout: StripeLayout::Across { factor: 8 },
            request_size,
            file_size: file_mb_per_node * (1 << 20) * compute_nodes as u64,
            delay: SimDuration::ZERO,
            prefetch: None,
            access: AccessPattern::ModeDriven,
            separate_files: false,
            verify_data: false,
            trace_cap: 0,
            faults: FaultSpec::default(),
            redundancy: Redundancy::None,
            metrics_cadence: None,
            shards: None,
            workers: 1,
        }
    }

    /// The paper's balanced workload: I/O-bound base plus a compute delay
    /// between reads, 128 MB file (16 MB per node).
    pub fn paper_balanced(request_size: u32, delay: SimDuration) -> Self {
        let mut cfg = Self::paper_iobound(request_size, 16);
        cfg.delay = delay;
        cfg
    }

    /// Enable the paper's depth-1 prefetch prototype, with the copy
    /// bandwidth taken from this config's calibration.
    pub fn with_prefetch(mut self) -> Self {
        let mut pc = PrefetchConfig::paper_prototype();
        pc.copy_bw = self.calib.cn_copy_bw;
        self.prefetch = Some(pc);
        self
    }

    /// Shard-world count this config resolves to: the explicit override,
    /// else by machine size (full-machine EXT-SCALING shapes shard
    /// automatically; the paper-scale configs stay serial so their
    /// golden traces are untouched). Zero-latency fabrics (the instant
    /// calibration) have no conservative lookahead and force the serial
    /// kernel regardless.
    pub fn resolved_shards(&self) -> usize {
        if self.shard_lookahead().is_zero() {
            return 1;
        }
        let auto = if self.compute_nodes >= 4096 {
            8
        } else if self.compute_nodes >= 1024 {
            4
        } else {
            1
        };
        self.shards.unwrap_or(auto).clamp(1, self.compute_nodes)
    }

    /// Conservative lookahead of this config's mesh: the minimum virtual
    /// latency any cross-shard message pays (one hop plus the receive
    /// overhead), which bounds how far one shard world may run ahead of
    /// another without missing an arrival.
    pub fn shard_lookahead(&self) -> SimDuration {
        self.calib.mesh.hop_latency + self.calib.mesh.recv_overhead
    }

    /// Rounds each node performs under this config.
    pub fn rounds_per_node(&self) -> u64 {
        let sz = self.request_size as u64;
        match (self.separate_files, self.mode) {
            // Every node reads the whole (shared) file.
            (false, IoMode::MGlobal) => self.file_size / sz,
            // Nodes partition the shared file.
            (false, _) => self.file_size / (sz * self.compute_nodes as u64),
            // Each node reads its own whole file.
            (true, _) => self.file_size / sz,
        }
    }

    /// Total bytes delivered to applications in one run.
    pub fn total_bytes(&self) -> u64 {
        self.rounds_per_node() * self.request_size as u64 * self.compute_nodes as u64
    }

    /// Sanity checks a run performs before starting.
    pub fn validate(&self) {
        assert!(self.compute_nodes > 0 && self.io_nodes > 0);
        assert!(self.request_size > 0 && self.stripe_unit > 0);
        assert!(
            self.rounds_per_node() > 0,
            "file too small for even one round: {self:?}"
        );
        if let StripeLayout::Across { factor } = self.layout {
            assert!(
                factor <= self.io_nodes,
                "stripe factor {factor} exceeds {} I/O nodes",
                self.io_nodes
            );
        }
        if self.mode.requires_equal_sizes() {
            // M_RECORD partitions must tile exactly.
            assert_eq!(
                self.file_size % (self.request_size as u64 * self.compute_nodes as u64),
                0,
                "M_RECORD needs the file to tile into whole collective rounds"
            );
        }
        if let Redundancy::Replicated { rf } = self.redundancy {
            assert!(rf >= 2, "replication factor below 2 is not replication");
            assert!(
                rf <= self.io_nodes,
                "replication factor {rf} exceeds {} I/O nodes",
                self.io_nodes
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_iobound_matches_testbed() {
        let cfg = ExperimentConfig::paper_iobound(64 * 1024, 8);
        assert_eq!(cfg.compute_nodes, 8);
        assert_eq!(cfg.io_nodes, 8);
        assert_eq!(cfg.file_size, 64 << 20);
        // 64 MB / (8 nodes × 64 KB) = 128 rounds.
        assert_eq!(cfg.rounds_per_node(), 128);
        assert_eq!(cfg.total_bytes(), 64 << 20);
        cfg.validate();
    }

    #[test]
    fn global_mode_multiplies_delivered_bytes() {
        let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 1);
        cfg.mode = IoMode::MGlobal;
        // Every node reads the whole 8 MB file.
        assert_eq!(cfg.rounds_per_node(), 128);
        assert_eq!(cfg.total_bytes(), 8 * (8 << 20));
    }

    #[test]
    fn separate_files_read_one_file_each() {
        let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 8);
        cfg.separate_files = true;
        cfg.file_size = 8 << 20; // per node now
        assert_eq!(cfg.rounds_per_node(), 128);
        assert_eq!(cfg.total_bytes(), 64 << 20);
    }

    #[test]
    fn with_prefetch_inherits_copy_bw() {
        let cfg = ExperimentConfig::paper_iobound(64 * 1024, 8).with_prefetch();
        let pc = cfg.prefetch.unwrap();
        assert_eq!(pc.copy_bw, cfg.calib.cn_copy_bw);
        assert_eq!(pc.depth, 1);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn m_record_rejects_ragged_files() {
        let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 8);
        cfg.file_size += 1;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn replication_factor_must_fit_the_machine() {
        let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 8);
        cfg.redundancy = Redundancy::Replicated { rf: 9 };
        cfg.validate();
    }

    #[test]
    fn layouts_materialize() {
        let a = StripeLayout::Across { factor: 4 }.attrs(1024);
        assert_eq!(a.group, vec![0, 1, 2, 3]);
        let w = StripeLayout::WaysOnOne { ways: 3, ion: 7 }.attrs(1024);
        assert_eq!(w.group, vec![7, 7, 7]);
    }
}
