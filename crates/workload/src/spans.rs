//! Span reconstruction: from a flat flight-recorder trace to the life of
//! each read.
//!
//! Every PFS transfer carries a request id from the compute node through
//! the ART, the mesh, the server, and the disks (see
//! `paragon_sim::trace`). This module groups a recording by request id
//! and decomposes each `read-start … read-done` interval into four
//! consecutive phases:
//!
//! * **request** — client-side setup, ART queueing, and the request
//!   message's mesh transit, up to the last request leg's arrival at an
//!   I/O node;
//! * **service** — server thread and protocol overheads before the first
//!   disk command starts moving;
//! * **disk** — first disk command start to last disk command
//!   completion (seek + rotation + media transfer across the RAID);
//! * **reply** — reply mesh transit plus the client's scatter copy, up
//!   to `read-done`.
//!
//! Phase boundaries are clamped to be monotone inside the span, so the
//! four phases **sum exactly** to the end-to-end latency by
//! construction — the paper's Table 2 access-time decomposition, derived
//! from the trace instead of from hand-placed timers. Reads that never
//! touch a disk (server cache hits) get a zero disk phase.

use std::collections::BTreeMap;

use paragon_metrics::{Histogram, Table};
use paragon_sim::{EventKind, ReqId, SimDuration, SimTime, TraceEvent, Track};

/// How a transfer entered the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Plain demand read (no prefetch engine, or engine bypass).
    Demand,
    /// Demand read that missed the prefetch list and went to the PFS.
    DemandMiss,
    /// Asynchronous prefetch transfer issued by the engine.
    Prefetch,
}

/// One reconstructed read: a request id's `read-start → read-done`
/// interval, decomposed into consecutive phases.
#[derive(Debug, Clone)]
pub struct ReadSpan {
    /// Request id (correlates with the raw trace).
    pub req: ReqId,
    /// File offset requested.
    pub offset: u64,
    /// Bytes requested.
    pub len: u64,
    /// Demand read, prefetch miss, or prefetch transfer.
    pub kind: SpanKind,
    /// Time the read entered the client.
    pub start: SimTime,
    /// Time the read returned to the caller.
    pub end: SimTime,
    /// Client + ART + request mesh transit.
    pub request: SimDuration,
    /// Server-side overheads before the first disk command.
    pub service: SimDuration,
    /// Disk busy interval (first command start → last completion).
    pub disk: SimDuration,
    /// Reply transit + scatter copy.
    pub reply: SimDuration,
}

impl ReadSpan {
    /// End-to-end latency; always equals the sum of the four phases.
    pub fn total(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Coarse layer classification of a flight-recorder event kind; the
/// analyzer-side inventory of the trace vocabulary.
///
/// [`kind_class`] matches every [`EventKind`] by name and without a
/// wildcard arm, so adding a kind to the recorder without deciding where
/// the span analyzer files it is a compile error here (and a
/// `paragon-lint` X1 finding until the name appears).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindClass {
    /// Client-side transfer lifecycle and buffer copies.
    Client,
    /// Asynchronous-request-thread (ART) lifecycle.
    Art,
    /// Mesh/NIC transit.
    Transport,
    /// I/O-node server handling.
    Server,
    /// Disk device commands.
    Disk,
    /// Prefetch-engine decisions on the demand path.
    Prefetch,
    /// Shared-pointer service-node operations.
    Pointer,
    /// Harness markers and free-form annotations.
    Meta,
    /// Fault injections and the recovery actions they triggered.
    Fault,
}

/// Classify `kind` into the layer the span analyzer files it under.
pub fn kind_class(kind: EventKind) -> KindClass {
    match kind {
        EventKind::ReadStart
        | EventKind::ReadDone
        | EventKind::WriteStart
        | EventKind::WriteDone
        | EventKind::Copy => KindClass::Client,
        EventKind::ArtSubmit | EventKind::ArtStart | EventKind::ArtDone => KindClass::Art,
        EventKind::NetTx | EventKind::NetRx => KindClass::Transport,
        EventKind::ServeStart | EventKind::ServeDone => KindClass::Server,
        EventKind::DiskStart | EventKind::DiskDone => KindClass::Disk,
        EventKind::PrefetchIssue
        | EventKind::PrefetchHitReady
        | EventKind::PrefetchHitInflight
        | EventKind::PrefetchMiss
        | EventKind::PrefetchCancel
        | EventKind::PrefetchEvict => KindClass::Prefetch,
        EventKind::PtrOp => KindClass::Pointer,
        EventKind::Mark => KindClass::Meta,
        EventKind::FaultDiskError
        | EventKind::FaultDiskDown
        | EventKind::MeshDrop
        | EventKind::MeshDup
        | EventKind::MeshDelay
        | EventKind::FaultNodeDown
        | EventKind::FaultNodeUp
        | EventKind::RpcRetry
        | EventKind::RpcGiveUp
        | EventKind::RaidReconstruct
        | EventKind::PrefetchFault
        | EventKind::PrefetchThrottle
        | EventKind::PrefetchResume
        | EventKind::ReplicaFailover
        | EventKind::RebuildStart
        | EventKind::RebuildCopy
        | EventKind::RebuildDone
        | EventKind::FaultNodeRecovered => KindClass::Fault,
    }
}

/// Degraded windows of a recording: for each `fault-node-down` marker,
/// the interval to the matching explicit `fault-node-recovered` event on
/// the same node, measured *directly from the trace* rather than
/// inferred from the fault plan's configured window bound. Nodes still
/// down when recording stopped yield `None` ends.
pub fn degraded_windows(events: &[TraceEvent]) -> Vec<(u64, SimTime, Option<SimTime>)> {
    let mut open: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        match e.kind {
            EventKind::FaultNodeDown => {
                open.entry(e.a).or_insert(e.time);
            }
            EventKind::FaultNodeRecovered => {
                if let Some(from) = open.remove(&e.a) {
                    out.push((e.a, from, Some(e.time)));
                }
            }
            _ => {}
        }
    }
    out.extend(open.into_iter().map(|(node, from)| (node, from, None)));
    out.sort_by_key(|&(node, from, _)| (from, node));
    out
}

/// Fault-related events of a recording, in time order: plan injections
/// (disk errors, mesh drop/dup/delay, crash-window edges) and the
/// recovery actions they triggered (RPC retries/give-ups, RAID
/// reconstructions, prefetch quarantine transitions).
pub fn fault_events(events: &[TraceEvent]) -> Vec<&TraceEvent> {
    events
        .iter()
        .filter(|e| kind_class(e.kind) == KindClass::Fault)
        .collect()
}

/// Reconstruct every completed read span in `events`.
///
/// A span needs a `read-start` and a matching `read-done` under the same
/// request id; transfers still in flight when recording stopped (or cut
/// off by the trace cap) are skipped.
pub fn read_spans(events: &[TraceEvent]) -> Vec<ReadSpan> {
    // Group this request's events; traces are time-ordered already.
    let mut by_req: BTreeMap<ReqId, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.req != 0 {
            by_req.entry(e.req).or_default().push(e);
        }
    }
    let mut spans = Vec::new();
    for (req, evs) in by_req {
        let Some(start_ev) = evs.iter().find(|e| e.kind == EventKind::ReadStart) else {
            continue;
        };
        let Some(end_ev) = evs.iter().rev().find(|e| e.kind == EventKind::ReadDone) else {
            continue;
        };
        let (start, end) = (start_ev.time, end_ev.time);
        // The client's mesh node id: source of the first request NetTx.
        let client_node = evs.iter().find_map(|e| match (e.kind, e.track) {
            (EventKind::NetTx, Track::Node(n)) if e.time >= start => Some(n),
            _ => None,
        });
        let clamp = |t: SimTime| t.max(start).min(end);
        // Last request-leg arrival at a non-client node. Reply NetRx
        // events land back on the client's node and are excluded.
        let b1 = evs
            .iter()
            .filter(|e| {
                e.kind == EventKind::NetRx
                    && match (e.track, client_node) {
                        (Track::Node(n), Some(c)) => n != c,
                        _ => true,
                    }
            })
            .map(|e| e.time)
            .max()
            .map(clamp)
            .unwrap_or(start);
        let first_disk = evs
            .iter()
            .filter(|e| e.kind == EventKind::DiskStart)
            .map(|e| e.time)
            .min()
            .map(clamp);
        let last_disk = evs
            .iter()
            .filter(|e| e.kind == EventKind::DiskDone)
            .map(|e| e.time)
            .max()
            .map(clamp);
        let b2 = first_disk.unwrap_or(b1).max(b1);
        let b3 = last_disk.unwrap_or(b2).max(b2);
        let kind = if evs.iter().any(|e| e.kind == EventKind::PrefetchIssue) {
            SpanKind::Prefetch
        } else if evs.iter().any(|e| e.kind == EventKind::PrefetchMiss) {
            SpanKind::DemandMiss
        } else {
            SpanKind::Demand
        };
        spans.push(ReadSpan {
            req,
            offset: start_ev.a,
            len: start_ev.b,
            kind,
            start,
            end,
            request: b1.since(start),
            service: b2.since(b1),
            disk: b3.since(b2),
            reply: end.since(b3),
        });
    }
    spans
}

/// Per-phase aggregate over a set of spans: one [`Histogram`] per phase
/// plus one for the end-to-end latency.
#[derive(Debug, Default)]
pub struct SpanBreakdown {
    pub request: Histogram,
    pub service: Histogram,
    pub disk: Histogram,
    pub reply: Histogram,
    pub total: Histogram,
    /// Spans folded in.
    pub count: usize,
}

impl SpanBreakdown {
    /// Aggregate `spans` (typically pre-filtered by [`SpanKind`]).
    pub fn of(spans: &[ReadSpan]) -> SpanBreakdown {
        let mut b = SpanBreakdown::default();
        for s in spans {
            b.request.record(s.request.as_secs_f64());
            b.service.record(s.service.as_secs_f64());
            b.disk.record(s.disk.as_secs_f64());
            b.reply.record(s.reply.as_secs_f64());
            b.total.record(s.total().as_secs_f64());
            b.count += 1;
        }
        b
    }

    /// Render the Table-2-style access-time decomposition: one row per
    /// phase with mean/p50/max in milliseconds, plus the end-to-end row.
    pub fn render(&mut self) -> String {
        let mut t = Table::new(
            "access-time decomposition",
            &["phase", "mean ms", "p50 ms", "max ms"],
        );
        let ms = |v: Option<f64>| format!("{:.3}", v.unwrap_or(0.0) * 1e3);
        {
            let mut row = |name: &str, h: &mut Histogram| {
                let mean = ms(h.mean());
                let p50 = ms(h.quantile(0.5));
                let max = ms(h.max());
                t.row(&[name, &mean, &p50, &max]);
            };
            row("request", &mut self.request);
            row("service", &mut self.service);
            row("disk", &mut self.disk);
            row("reply", &mut self.reply);
            row("end-to-end", &mut self.total);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::{ev, EventBody, Track};

    fn mk(t_us: u64, body: EventBody) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t_us * 1000),
            track: body.track,
            kind: body.kind,
            req: body.req,
            a: body.a,
            b: body.b,
        }
    }

    fn demand_read(req: ReqId, base_us: u64) -> Vec<TraceEvent> {
        vec![
            mk(
                base_us,
                ev(Track::Cn(0), EventKind::ReadStart, req, 0, 4096),
            ),
            mk(
                base_us + 10,
                ev(Track::Node(0), EventKind::NetTx, req, 64, 3),
            ),
            mk(
                base_us + 20,
                ev(Track::Node(3), EventKind::NetRx, req, 64, 0),
            ),
            mk(
                base_us + 25,
                ev(Track::Ion(1), EventKind::ServeStart, req, 0, 4096),
            ),
            mk(
                base_us + 30,
                ev(Track::Disk(2), EventKind::DiskStart, req, 0, 4096),
            ),
            mk(
                base_us + 70,
                ev(Track::Disk(2), EventKind::DiskDone, req, 0, 4096),
            ),
            mk(
                base_us + 75,
                ev(Track::Ion(1), EventKind::ServeDone, req, 0, 4096),
            ),
            mk(
                base_us + 80,
                ev(Track::Node(3), EventKind::NetTx, req, 4160, 0),
            ),
            mk(
                base_us + 90,
                ev(Track::Node(0), EventKind::NetRx, req, 4160, 3),
            ),
            mk(
                base_us + 95,
                ev(Track::Cn(0), EventKind::Copy, req, 0, 4096),
            ),
            mk(
                base_us + 100,
                ev(Track::Cn(0), EventKind::ReadDone, req, 0, 4096),
            ),
        ]
    }

    #[test]
    fn phases_sum_exactly_to_end_to_end() {
        let events = demand_read(1, 100);
        let spans = read_spans(&events);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.kind, SpanKind::Demand);
        assert_eq!(s.request + s.service + s.disk + s.reply, s.total());
        assert_eq!(s.request, SimDuration::from_micros(20));
        assert_eq!(s.service, SimDuration::from_micros(10));
        assert_eq!(s.disk, SimDuration::from_micros(40));
        assert_eq!(s.reply, SimDuration::from_micros(30));
    }

    #[test]
    fn diskless_read_gets_zero_disk_phase() {
        let req = 7;
        let events = vec![
            mk(0, ev(Track::Cn(0), EventKind::ReadStart, req, 0, 64)),
            mk(5, ev(Track::Node(0), EventKind::NetTx, req, 96, 2)),
            mk(9, ev(Track::Node(2), EventKind::NetRx, req, 96, 0)),
            mk(15, ev(Track::Node(2), EventKind::NetTx, req, 128, 0)),
            mk(19, ev(Track::Node(0), EventKind::NetRx, req, 128, 2)),
            mk(20, ev(Track::Cn(0), EventKind::ReadDone, req, 0, 64)),
        ];
        let spans = read_spans(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].disk, SimDuration::ZERO);
        assert_eq!(spans[0].request, SimDuration::from_micros(9));
        assert_eq!(spans[0].reply, SimDuration::from_micros(11));
    }

    #[test]
    fn unfinished_and_contextless_events_are_skipped() {
        let mut events = demand_read(1, 0);
        events.pop(); // drop read-done
        events.push(mk(500, ev(Track::Sys, EventKind::Mark, 0, 0, 0)));
        assert!(read_spans(&events).is_empty());
    }

    #[test]
    fn kinds_follow_prefetch_markers() {
        let mut miss = demand_read(2, 0);
        miss.insert(
            0,
            mk(0, ev(Track::Cn(0), EventKind::PrefetchMiss, 2, 0, 4096)),
        );
        let mut pf = demand_read(3, 1000);
        pf.insert(
            0,
            mk(1000, ev(Track::Cn(0), EventKind::PrefetchIssue, 3, 0, 4096)),
        );
        let mut events = miss;
        events.extend(pf);
        let spans = read_spans(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::DemandMiss);
        assert_eq!(spans[1].kind, SpanKind::Prefetch);
    }

    #[test]
    fn every_kind_is_classified_and_fault_filter_matches_its_class() {
        use std::collections::BTreeMap;
        let mut per_class: BTreeMap<&str, usize> = BTreeMap::new();
        for &k in &EventKind::ALL {
            *per_class
                .entry(match kind_class(k) {
                    KindClass::Client => "client",
                    KindClass::Art => "art",
                    KindClass::Transport => "transport",
                    KindClass::Server => "server",
                    KindClass::Disk => "disk",
                    KindClass::Prefetch => "prefetch",
                    KindClass::Pointer => "pointer",
                    KindClass::Meta => "meta",
                    KindClass::Fault => "fault",
                })
                .or_default() += 1;
        }
        assert_eq!(per_class.values().sum::<usize>(), EventKind::ALL.len());
        assert_eq!(per_class["fault"], 18);
        // fault_events agrees with the classifier.
        let events: Vec<TraceEvent> = EventKind::ALL
            .iter()
            .map(|&k| mk(0, ev(Track::Sys, k, 0, 0, 0)))
            .collect();
        assert_eq!(fault_events(&events).len(), 18);
    }

    #[test]
    fn degraded_windows_pair_down_with_explicit_recovery() {
        let events = vec![
            mk(10, ev(Track::Sys, EventKind::FaultNodeDown, 0, 5, 0)),
            mk(15, ev(Track::Sys, EventKind::FaultNodeDown, 0, 9, 0)),
            mk(
                40,
                ev(Track::Sys, EventKind::FaultNodeRecovered, 0, 5, 30_000),
            ),
            // Node 9 never recovers before the recording stops.
        ];
        let w = degraded_windows(&events);
        assert_eq!(w.len(), 2);
        assert_eq!(
            w[0],
            (
                5,
                SimTime::from_nanos(10_000),
                Some(SimTime::from_nanos(40_000))
            )
        );
        assert_eq!(w[1], (9, SimTime::from_nanos(15_000), None));
    }

    #[test]
    fn breakdown_aggregates_and_renders() {
        let mut events = demand_read(1, 0);
        events.extend(demand_read(2, 1000));
        let spans = read_spans(&events);
        let mut b = SpanBreakdown::of(&spans);
        assert_eq!(b.count, 2);
        assert_eq!(b.total.mean(), Some(100e-6));
        let table = b.render();
        assert!(table.contains("end-to-end"));
        assert!(table.contains("disk"));
    }
}
