//! # paragon-workload — synthetic SPMD workloads and the experiment driver
//!
//! The paper evaluates prefetching with synthetic workloads: extensive
//! parallel reads of large shared files, with configurable compute delays
//! between I/O calls ("balanced" workloads), under various request sizes,
//! stripe units, and stripe groups. [`ExperimentConfig`] captures one
//! such setup, [`run`] executes it on a freshly-built simulated Paragon,
//! and [`RunResult`] reports the paper's metrics (collective read
//! bandwidth, per-request access times, per-node fairness, prefetch
//! hit/waste accounting).

mod config;
mod driver;
mod result;
mod shard;
pub mod spans;
pub mod telemetry;

pub use config::{AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};
pub use driver::{run, run_profiled};
pub use result::{NodeResult, RunResult};
pub use spans::{
    fault_events, kind_class, read_spans, KindClass, ReadSpan, SpanBreakdown, SpanKind,
};
pub use telemetry::{
    metrics_check, metrics_report, render_report, Telemetry, PARALLEL_SPEEDUP_FLOOR,
    PARALLEL_SPEEDUP_SCALAR,
};
