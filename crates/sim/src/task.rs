//! Task bookkeeping for the single-threaded executor.
//!
//! Wakers are `Arc`-based (`std::task::Wake`) so they satisfy the `Send +
//! Sync` bound of `std::task::Waker` without unsafe code; the shared ready
//! queue behind a `Mutex` is uncontended in practice because the whole
//! simulation runs on one thread.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::Wake;

/// Identifies a spawned task for the lifetime of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// Raw numeric id (monotone in spawn order).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Queue of tasks that have been woken and must be polled.
///
/// Shared between the kernel and every waker handed to a task.
#[derive(Clone, Default)]
pub(crate) struct ReadyQueue {
    inner: Arc<Mutex<VecDeque<TaskId>>>,
}

impl ReadyQueue {
    pub(crate) fn push(&self, id: TaskId) {
        self.inner
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    pub(crate) fn pop(&self) -> Option<TaskId> {
        self.inner.lock().expect("ready queue poisoned").pop_front()
    }
}

/// Waker for one task: pushes the task id back onto the ready queue.
pub(crate) struct TaskWaker {
    pub(crate) id: TaskId,
    pub(crate) ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// The future owned by a task slot.
pub(crate) type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// Slot state: `None` while the executor has temporarily taken the future
/// out to poll it (so re-entrant wakes during the poll are harmless).
pub(crate) struct TaskSlot {
    pub(crate) future: Option<BoxedTask>,
    pub(crate) label: &'static str,
}
