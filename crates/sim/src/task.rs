//! Task bookkeeping for the single-threaded executor.
//!
//! Tasks live in a slab: a flat `Vec` of slots indexed by the low 32 bits
//! of the [`TaskId`], with a free list for reuse. The high 32 bits carry a
//! per-slot generation that is bumped every time a slot is freed, so a wake
//! addressed to a task that has completed — even if its slot has since been
//! reused — fails the generation check and is dropped instead of being
//! misdelivered (the classic ABA hazard of index reuse).
//!
//! Wakers are `Rc`-based with a hand-rolled [`RawWakerVTable`]: a world's
//! executor, its tasks, and every waker they clone all live on one thread
//! (worlds are pinned to a single worker for their lifetime, and wakers
//! never cross the frame channel), so the `Send + Sync` contract of
//! `std::task::Waker` is vacuously met and the ready ring needs no lock.
//! Each slot caches the `Waker` for its current occupant, so polling
//! allocates nothing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{RawWaker, RawWakerVTable, Waker};

/// Identifies a spawned task for the lifetime of a simulation.
///
/// Packs `(generation << 32) | slot`: the slot indexes the executor's task
/// slab, the generation detects stale references to a reused slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// Raw packed id (`generation << 32 | slot`).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    pub(crate) fn new(slot: u32, generation: u32) -> TaskId {
        TaskId(((generation as u64) << 32) | slot as u64)
    }

    pub(crate) fn slot(self) -> u32 {
        self.0 as u32
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Ring of tasks that have been woken and must be polled.
///
/// Shared between the executor and every waker handed to a task.
#[derive(Clone, Default)]
pub(crate) struct ReadyQueue {
    inner: Rc<RefCell<VecDeque<TaskId>>>,
}

impl ReadyQueue {
    pub(crate) fn push(&self, id: TaskId) {
        // The borrow lasts only for this statement, so a task waking
        // itself mid-poll (executor not holding a borrow) cannot trip it.
        self.inner.borrow_mut().push_back(id);
    }

    pub(crate) fn pop(&self) -> Option<TaskId> {
        self.inner.borrow_mut().pop_front()
    }
}

/// Waker payload for one task: waking pushes the task id back onto the
/// ready ring.
struct TaskWaker {
    id: TaskId,
    ready: ReadyQueue,
}

/// Waker vtable over `Rc<TaskWaker>`.
///
/// # Safety
///
/// `Waker` requires `Send + Sync`, which `Rc` cannot promise; the vtable
/// is sound anyway because no waker ever leaves its world's thread: the
/// executor, the kernel's timer queue, and every sync primitive that
/// stashes a waker are world-local, worlds are pinned to one worker
/// thread for their whole run, and cross-world traffic goes through the
/// frame channel as plain data (never wakers). Every vtable entry is
/// only ever called with a pointer produced by `Rc::into_raw` in
/// [`task_waker`] or [`clone_raw`].
static VTABLE: RawWakerVTable = RawWakerVTable::new(clone_raw, wake_raw, wake_by_ref_raw, drop_raw);

unsafe fn clone_raw(ptr: *const ()) -> RawWaker {
    Rc::increment_strong_count(ptr as *const TaskWaker);
    RawWaker::new(ptr, &VTABLE)
}

unsafe fn wake_raw(ptr: *const ()) {
    let w = Rc::from_raw(ptr as *const TaskWaker);
    w.ready.push(w.id);
}

unsafe fn wake_by_ref_raw(ptr: *const ()) {
    let w = &*(ptr as *const TaskWaker);
    w.ready.push(w.id);
}

unsafe fn drop_raw(ptr: *const ()) {
    drop(Rc::from_raw(ptr as *const TaskWaker));
}

/// Build the waker for `id`; cloning it is an `Rc` count bump.
fn task_waker(id: TaskId, ready: &ReadyQueue) -> Waker {
    let w = Rc::new(TaskWaker {
        id,
        ready: ready.clone(),
    });
    unsafe { Waker::from_raw(RawWaker::new(Rc::into_raw(w) as *const (), &VTABLE)) }
}

/// The future owned by a task slot.
pub(crate) type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// One slab slot. `future` is `None` while the executor has temporarily
/// taken the future out to poll it (so re-entrant wakes during the poll are
/// harmless) and after the slot is freed.
pub(crate) struct TaskSlot {
    pub(crate) generation: u32,
    live: bool,
    /// Monotone spawn counter, used to report pending tasks in spawn order.
    spawn_seq: u64,
    pub(crate) label: &'static str,
    pub(crate) future: Option<BoxedTask>,
    /// Cached waker for the current occupant; cloned per poll (an `Rc`
    /// bump) instead of allocating a fresh `TaskWaker` every poll.
    waker: Option<Waker>,
}

impl TaskSlot {
    fn vacant() -> Self {
        TaskSlot {
            generation: 0,
            live: false,
            spawn_seq: 0,
            label: "",
            future: None,
            waker: None,
        }
    }

    pub(crate) fn waker(&self) -> Waker {
        self.waker.clone().expect("live task slot has a waker")
    }
}

/// Slab of task slots with generational ids and a free list.
#[derive(Default)]
pub(crate) struct TaskTable {
    slots: Vec<TaskSlot>,
    free: Vec<u32>,
    next_spawn: u64,
    live: usize,
}

impl TaskTable {
    /// Number of live (spawned, not yet completed) tasks.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Claim a slot for a new task and cache its waker.
    pub(crate) fn insert(
        &mut self,
        label: &'static str,
        future: BoxedTask,
        ready: &ReadyQueue,
    ) -> TaskId {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(TaskSlot::vacant());
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        let id = TaskId::new(idx, slot.generation);
        slot.live = true;
        slot.spawn_seq = self.next_spawn;
        slot.label = label;
        slot.future = Some(future);
        slot.waker = Some(task_waker(id, ready));
        self.next_spawn += 1;
        self.live += 1;
        id
    }

    /// The slot for `id`, or `None` if the task completed — including when
    /// its slot was reused (generation mismatch drops the stale reference).
    pub(crate) fn get_live(&mut self, id: TaskId) -> Option<&mut TaskSlot> {
        let slot = self.slots.get_mut(id.slot() as usize)?;
        if slot.live && slot.generation == id.generation() {
            Some(slot)
        } else {
            None
        }
    }

    /// Free `id`'s slot, bumping its generation so stale wakes miss.
    pub(crate) fn remove(&mut self, id: TaskId) {
        let idx = id.slot();
        if let Some(slot) = self.slots.get_mut(idx as usize) {
            if slot.live && slot.generation == id.generation() {
                slot.live = false;
                slot.future = None;
                slot.waker = None;
                slot.generation = slot.generation.wrapping_add(1);
                self.live -= 1;
                self.free.push(idx);
            }
        }
    }

    /// Drop every live task (futures, wakers and all), freeing the slots.
    pub(crate) fn clear(&mut self) {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.live {
                slot.live = false;
                slot.future = None;
                slot.waker = None;
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(idx as u32);
            }
        }
        self.live = 0;
    }

    /// Labels of live tasks, in spawn order.
    pub(crate) fn live_labels(&self) -> Vec<&'static str> {
        let mut live: Vec<(u64, &'static str)> = self
            .slots
            .iter()
            .filter(|s| s.live)
            .map(|s| (s.spawn_seq, s.label))
            .collect();
        live.sort_unstable();
        live.into_iter().map(|(_, label)| label).collect()
    }
}
