//! The structured flight recorder.
//!
//! Off by default and free when off: call sites pass a closure, so no
//! event is even constructed unless a trace is armed, and an armed
//! recording appends one `Copy` struct — no per-event allocation either
//! way. Components across the stack record typed [`TraceEvent`]s keyed by
//! a request id minted at the PFS client, which lets the harness
//! reconstruct the life of one read as it crosses the client, the ART,
//! the mesh, the server, and the disks. Bounded: recording stops at the
//! cap rather than growing without limit.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::time::SimTime;

/// Request id threaded through every layer a PFS operation touches.
/// Minted by [`crate::Sim::mint_req`]; `0` means "no request context".
pub type ReqId = u64;

/// Where an event happened — one timeline lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Compute node, by application rank.
    Cn(u16),
    /// I/O node, by index.
    Ion(u16),
    /// A mesh node by raw id (used by layers that only know topology).
    Node(u16),
    /// One spindle of an I/O node's RAID array.
    Disk(u16),
    /// The service node (shared-pointer server).
    Svc,
    /// No specific place (harness, setup, untagged subsystems).
    Sys,
}

impl std::fmt::Display for Track {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Track::Cn(i) => write!(f, "cn{i}"),
            Track::Ion(i) => write!(f, "ion{i}"),
            Track::Node(i) => write!(f, "node{i}"),
            Track::Disk(i) => write!(f, "disk{i}"),
            Track::Svc => write!(f, "svc"),
            Track::Sys => write!(f, "sys"),
        }
    }
}

impl Track {
    /// Parse the `Display` form back (for trace-file import).
    pub fn parse(s: &str) -> Option<Track> {
        let num = |prefix: &str| s.strip_prefix(prefix).and_then(|n| n.parse::<u16>().ok());
        if let Some(i) = num("cn") {
            return Some(Track::Cn(i));
        }
        if let Some(i) = num("ion") {
            return Some(Track::Ion(i));
        }
        if let Some(i) = num("node") {
            return Some(Track::Node(i));
        }
        if let Some(i) = num("disk") {
            return Some(Track::Disk(i));
        }
        match s {
            "svc" => Some(Track::Svc),
            "sys" => Some(Track::Sys),
            _ => None,
        }
    }

    /// Stable small integer for hashing (variant tag, then index).
    fn code(&self) -> (u64, u64) {
        match *self {
            Track::Cn(i) => (0, i as u64),
            Track::Ion(i) => (1, i as u64),
            Track::Node(i) => (2, i as u64),
            Track::Disk(i) => (3, i as u64),
            Track::Svc => (4, 0),
            Track::Sys => (5, 0),
        }
    }
}

/// What happened. The `a`/`b` detail fields of [`TraceEvent`] carry the
/// kind-specific payload noted on each variant (usually offset/length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Demand read entered the client (`a`=offset, `b`=len).
    ReadStart,
    /// Demand read returned to the application (`a`=offset, `b`=len).
    ReadDone,
    /// Write entered the client (`a`=offset, `b`=len).
    WriteStart,
    /// Write acknowledged (`a`=offset, `b`=len).
    WriteDone,
    /// Operation handed to an asynchronous request thread (`a`=queue pos).
    ArtSubmit,
    /// ART began running the operation after its dispatch latency.
    ArtStart,
    /// ART finished the operation.
    ArtDone,
    /// Message entered the mesh at its source NIC (`a`=wire bytes,
    /// `b`=destination node id).
    NetTx,
    /// Message delivered at its destination (`a`=wire bytes, `b`=source
    /// node id).
    NetRx,
    /// PFS server began handling a request (`a`=offset, `b`=len).
    ServeStart,
    /// PFS server finished a request (`a`=offset, `b`=len).
    ServeDone,
    /// Disk service of one device command began (`a`=offset, `b`=len).
    DiskStart,
    /// Disk service of one device command completed (`a`=offset, `b`=len).
    DiskDone,
    /// Prefetch issued for a predicted read (`a`=offset, `b`=len).
    PrefetchIssue,
    /// Demand read matched a completed prefetch buffer (`a`=offset,
    /// `b`=len).
    PrefetchHitReady,
    /// Demand read matched a prefetch still in flight (`a`=offset,
    /// `b`=len).
    PrefetchHitInflight,
    /// Demand read found no matching buffer (`a`=offset, `b`=len).
    PrefetchMiss,
    /// Prefetch entry discarded at close while still in flight
    /// (`a`=offset, `b`=len).
    PrefetchCancel,
    /// Prefetch entry evicted to make room (`a`=offset, `b`=len).
    PrefetchEvict,
    /// Buffer-to-buffer copy charged (`a`=bytes, `b`=unused).
    Copy,
    /// Shared-pointer operation at the service node (`a`=resulting
    /// offset).
    PtrOp,
    /// Anything else (`a`/`b` free-form).
    Mark,
    /// Injected disk read error (`a`=offset, `b`=len). Transient unless a
    /// `FaultDiskDown` for the same track precedes it.
    FaultDiskError,
    /// A disk (RAID member) died per the fault plan (`a`/`b` unused).
    FaultDiskDown,
    /// Mesh message dropped — injected fault or dead receiver (`a`=wire
    /// bytes, `b`=destination node id).
    MeshDrop,
    /// Mesh message duplicated by the fault plan (`a`=wire bytes,
    /// `b`=destination node id).
    MeshDup,
    /// Mesh message delayed by the fault plan (`a`=extra nanoseconds,
    /// `b`=destination node id).
    MeshDelay,
    /// A node entered a crash window (`a`=node id, `b`=until-nanos).
    FaultNodeDown,
    /// A crashed node restarted (`a`=node id).
    FaultNodeUp,
    /// RPC attempt timed out; the client is retrying (`a`=attempt number,
    /// `b`=destination node id).
    RpcRetry,
    /// RPC gave up after exhausting its retry budget (`a`=attempts,
    /// `b`=destination node id).
    RpcGiveUp,
    /// RAID read reconstructed a dead member from parity (`a`=member
    /// offset, `b`=len).
    RaidReconstruct,
    /// A prefetch came back with an error and was quarantined
    /// (`a`=offset, `b`=len).
    PrefetchFault,
    /// The prefetch engine disabled itself after repeated faults
    /// (`a`=consecutive fault count).
    PrefetchThrottle,
    /// The prefetch engine re-enabled after a clean demand read.
    PrefetchResume,
    /// Replicated read fell over to another copy of the slot
    /// (`a`=slot, `b`=replica index served next).
    ReplicaFailover,
    /// Recovery coordinator began re-replicating after an I/O-node crash
    /// (`a`=under-replicated stripe slots, `b`=crashed node id).
    RebuildStart,
    /// One stripe slot's lost copy was re-replicated to a surviving
    /// I/O node (`a`=slot, `b`=bytes copied).
    RebuildCopy,
    /// Recovery coordinator drained its queue — full redundancy restored
    /// (`a`=slots copied, `b`=bytes copied).
    RebuildDone,
    /// A crash window was explicitly closed and the node rejoined
    /// (`a`=node id, `b`=degraded nanoseconds).
    FaultNodeRecovered,
}

impl EventKind {
    /// Every kind, in hash/serialization order. New kinds are appended —
    /// [`EventKind::code`] is positional, so the existing order is frozen
    /// to keep old trace hashes stable.
    pub const ALL: [EventKind; 40] = [
        EventKind::ReadStart,
        EventKind::ReadDone,
        EventKind::WriteStart,
        EventKind::WriteDone,
        EventKind::ArtSubmit,
        EventKind::ArtStart,
        EventKind::ArtDone,
        EventKind::NetTx,
        EventKind::NetRx,
        EventKind::ServeStart,
        EventKind::ServeDone,
        EventKind::DiskStart,
        EventKind::DiskDone,
        EventKind::PrefetchIssue,
        EventKind::PrefetchHitReady,
        EventKind::PrefetchHitInflight,
        EventKind::PrefetchMiss,
        EventKind::PrefetchCancel,
        EventKind::PrefetchEvict,
        EventKind::Copy,
        EventKind::PtrOp,
        EventKind::Mark,
        EventKind::FaultDiskError,
        EventKind::FaultDiskDown,
        EventKind::MeshDrop,
        EventKind::MeshDup,
        EventKind::MeshDelay,
        EventKind::FaultNodeDown,
        EventKind::FaultNodeUp,
        EventKind::RpcRetry,
        EventKind::RpcGiveUp,
        EventKind::RaidReconstruct,
        EventKind::PrefetchFault,
        EventKind::PrefetchThrottle,
        EventKind::PrefetchResume,
        EventKind::ReplicaFailover,
        EventKind::RebuildStart,
        EventKind::RebuildCopy,
        EventKind::RebuildDone,
        EventKind::FaultNodeRecovered,
    ];

    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::ReadStart => "read-start",
            EventKind::ReadDone => "read-done",
            EventKind::WriteStart => "write-start",
            EventKind::WriteDone => "write-done",
            EventKind::ArtSubmit => "art-submit",
            EventKind::ArtStart => "art-start",
            EventKind::ArtDone => "art-done",
            EventKind::NetTx => "net-tx",
            EventKind::NetRx => "net-rx",
            EventKind::ServeStart => "serve-start",
            EventKind::ServeDone => "serve-done",
            EventKind::DiskStart => "disk-start",
            EventKind::DiskDone => "disk-done",
            EventKind::PrefetchIssue => "pf-issue",
            EventKind::PrefetchHitReady => "pf-hit-ready",
            EventKind::PrefetchHitInflight => "pf-hit-inflight",
            EventKind::PrefetchMiss => "pf-miss",
            EventKind::PrefetchCancel => "pf-cancel",
            EventKind::PrefetchEvict => "pf-evict",
            EventKind::Copy => "copy",
            EventKind::PtrOp => "ptr-op",
            EventKind::Mark => "mark",
            EventKind::FaultDiskError => "fault-disk-error",
            EventKind::FaultDiskDown => "fault-disk-down",
            EventKind::MeshDrop => "mesh-drop",
            EventKind::MeshDup => "mesh-dup",
            EventKind::MeshDelay => "mesh-delay",
            EventKind::FaultNodeDown => "fault-node-down",
            EventKind::FaultNodeUp => "fault-node-up",
            EventKind::RpcRetry => "rpc-retry",
            EventKind::RpcGiveUp => "rpc-give-up",
            EventKind::RaidReconstruct => "raid-reconstruct",
            EventKind::PrefetchFault => "pf-fault",
            EventKind::PrefetchThrottle => "pf-throttle",
            EventKind::PrefetchResume => "pf-resume",
            EventKind::ReplicaFailover => "replica-failover",
            EventKind::RebuildStart => "rebuild-start",
            EventKind::RebuildCopy => "rebuild-copy",
            EventKind::RebuildDone => "rebuild-done",
            EventKind::FaultNodeRecovered => "fault-node-recovered",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }

    /// Stable small integer for hashing.
    fn code(&self) -> u64 {
        EventKind::ALL.iter().position(|k| k == self).unwrap() as u64
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Timeline lane.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
    /// Request context (`0` = none).
    pub req: ReqId,
    /// Kind-specific detail (usually a byte offset).
    pub a: u64,
    /// Kind-specific detail (usually a length).
    pub b: u64,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<7} {:<16} req={} a={} b={}",
            self.track.to_string(),
            self.kind.as_str(),
            self.req,
            self.a,
            self.b
        )
    }
}

/// The body of an event, before the recorder stamps the time. Built by
/// call-site closures via [`ev`].
#[derive(Debug, Clone, Copy)]
pub struct EventBody {
    pub track: Track,
    pub kind: EventKind,
    pub req: ReqId,
    pub a: u64,
    pub b: u64,
}

/// Shorthand constructor used at recording sites:
/// `sim.emit(|| ev(Track::Cn(0), EventKind::ReadStart, req, off, len))`.
pub fn ev(track: Track, kind: EventKind, req: ReqId, a: u64, b: u64) -> EventBody {
    EventBody {
        track,
        kind,
        req,
        a,
        b,
    }
}

/// Ownership predicate installed on sharded runs (see `set_track_filter`).
type TrackFilter = Box<dyn Fn(Track) -> bool>;

#[derive(Default)]
pub(crate) struct TraceState {
    events: RefCell<Vec<TraceEvent>>,
    cap: Cell<usize>,
    /// Count of ids minted so far (not the last id — see `mint_req`).
    minted: Cell<u64>,
    /// Sharded id-space partition: world `req_offset` of `req_stride`
    /// mints `offset+1, offset+1+stride, …`. Both zero by default, which
    /// `mint_req` treats as offset 0 / stride 1 — the dense serial space.
    req_offset: Cell<u64>,
    req_stride: Cell<u64>,
    /// Ownership predicate for sharded runs: events whose track fails it
    /// are not stored, so each shard records only the lanes it owns and
    /// the merged trace has no duplicates from replicated worlds.
    filter: RefCell<Option<TrackFilter>>,
    /// Reused by every `render_tracks` call on this recorder.
    summary_scratch: RefCell<TrackSummaryScratch>,
}

/// Handle to a simulation's flight recorder (cloned out of `Sim`).
#[derive(Clone, Default)]
pub struct Trace {
    pub(crate) state: Rc<TraceState>,
}

impl Trace {
    /// Arm recording with space for `cap` events (0 disarms).
    pub fn arm(&self, cap: usize) {
        self.state.cap.set(cap);
        self.state.events.borrow_mut().clear();
    }

    /// True when events are being recorded (armed and not yet full).
    pub fn armed(&self) -> bool {
        self.state.cap.get() > self.state.events.borrow().len()
    }

    /// Record an event; `body` is only evaluated while armed, so a
    /// disarmed recorder costs one capacity check and nothing more.
    pub fn record(&self, now: SimTime, body: impl FnOnce() -> EventBody) {
        if self.armed() {
            let EventBody {
                track,
                kind,
                req,
                a,
                b,
            } = body();
            if let Some(keep) = self.state.filter.borrow().as_deref() {
                if !keep(track) {
                    return;
                }
            }
            self.state.events.borrow_mut().push(TraceEvent {
                time: now,
                track,
                kind,
                req,
                a,
                b,
            });
        }
    }

    /// Restrict recording to tracks `keep` accepts. Used by sharded runs
    /// so each world's recorder keeps only the timeline lanes its shard
    /// owns; the concatenation of all shards then covers every lane once.
    pub fn set_track_filter(&self, keep: impl Fn(Track) -> bool + 'static) {
        *self.state.filter.borrow_mut() = Some(Box::new(keep));
    }

    /// Partition the request-id space for a sharded run: world `offset`
    /// of `stride` mints `offset+1, offset+1+stride, …`, so ids stay
    /// globally unique without cross-shard coordination. Serial runs keep
    /// the default (offset 0, stride 1) and mint densely from 1.
    pub fn shard_req_ids(&self, offset: u64, stride: u64) {
        self.state.req_offset.set(offset);
        self.state.req_stride.set(stride);
    }

    /// Mint the next request id (monotone; never 0). Minting is
    /// independent of arming so request ids — and therefore event traces —
    /// are identical whether or not a recorder is attached.
    pub fn mint_req(&self) -> ReqId {
        let n = self.state.minted.get();
        self.state.minted.set(n + 1);
        self.state.req_offset.get() + 1 + n * self.state.req_stride.get().max(1)
    }

    /// Events recorded so far (time order — recording order is already
    /// monotone in virtual time).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.events.borrow().len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// FNV-1a hash over every recorded event's full contents. Two runs
    /// with equal hashes took byte-identical traces.
    pub fn hash(&self) -> u64 {
        hash_events(&self.state.events.borrow())
    }

    /// Render one line per event: `    12.345ms cn0 read-start req=1 …`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.state.events.borrow().iter() {
            out.push_str(&format!("{:>14}  {e}\n", format!("{}", e.time)));
        }
        out
    }

    /// Per-track summary: event count and first/last event times.
    pub fn render_tracks(&self) -> String {
        self.state
            .summary_scratch
            .borrow_mut()
            .render(&self.state.events.borrow())
    }

    /// Export the recording as a self-contained JSON document (see
    /// [`export_json`]).
    pub fn to_json(&self) -> String {
        export_json(&self.state.events.borrow())
    }
}

/// Reusable accumulator for per-track summaries. The seed implementation
/// rebuilt a `BTreeMap<Track, …>` (one node allocation per track) on every
/// summary; this keeps a sorted row `Vec` whose capacity survives across
/// calls, so repeated summaries of a live recorder allocate nothing but
/// the output string.
#[derive(Default)]
pub struct TrackSummaryScratch {
    /// Rows sorted by track; count plus first/last event times.
    rows: Vec<(Track, usize, SimTime, SimTime)>,
}

impl TrackSummaryScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarize `events`, reusing this scratch's row storage.
    pub fn render(&mut self, events: &[TraceEvent]) -> String {
        self.rows.clear();
        for e in events {
            match self.rows.binary_search_by_key(&e.track, |r| r.0) {
                Ok(i) => {
                    let row = &mut self.rows[i];
                    row.1 += 1;
                    row.2 = row.2.min(e.time);
                    row.3 = row.3.max(e.time);
                }
                Err(i) => self.rows.insert(i, (e.track, 1, e.time, e.time)),
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>8} {:>14} {:>14}\n",
            "track", "events", "first", "last"
        ));
        for &(track, n, first, last) in &self.rows {
            out.push_str(&format!(
                "{:<10} {n:>8} {:>14} {:>14}\n",
                track.to_string(),
                format!("{first}"),
                format!("{last}")
            ));
        }
        out
    }
}

/// Per-track summary of a slice of events: event count plus first/last
/// event times, one row per track, tracks in [`Track`] order.
pub fn render_track_summary(events: &[TraceEvent]) -> String {
    TrackSummaryScratch::new().render(events)
}

/// Merge per-shard event streams into one deterministic timeline.
///
/// Each stream is already monotone in time (recorders append in firing
/// order), so a stable sort of the shard-order concatenation yields
/// `(time, shard)` order: same-instant events land lowest-shard-first,
/// independent of how many host threads drove the run.
pub fn merge_shard_events(streams: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| e.time);
    all
}

/// FNV-1a folded over every field of every event, in order.
pub fn hash_events(events: &[TraceEvent]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        fold(e.time.as_nanos());
        let (t, i) = e.track.code();
        fold(t);
        fold(i);
        fold(e.kind.code());
        fold(e.req);
        fold(e.a);
        fold(e.b);
    }
    h
}

/// Serialize events to the trace-file JSON format:
/// `{"hash":"0x…","events":[{"t":…,"track":"cn0","kind":"read-start",
/// "req":1,"a":0,"b":65536}, …]}`. Written by hand (no serde) so the
/// build stays hermetic; the format is fixed and versionless.
pub fn export_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 64);
    out.push_str(&format!(
        "{{\"hash\":\"{:#018x}\",\n\"events\":[\n",
        hash_events(events)
    ));
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "{{\"t\":{},\"track\":\"{}\",\"kind\":\"{}\",\"req\":{},\"a\":{},\"b\":{}}}{}\n",
            e.time.as_nanos(),
            e.track,
            e.kind.as_str(),
            e.req,
            e.a,
            e.b,
            if i + 1 == events.len() { "" } else { "," }
        ));
    }
    out.push_str("]}\n");
    out
}

/// Parse a trace file produced by [`export_json`] back into events.
/// Strict: accepts exactly that shape (any whitespace), nothing more.
pub fn parse_json(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.expect('{')?;
    p.expect_key("hash")?;
    let _hash = p.string()?;
    p.expect(',')?;
    p.expect_key("events")?;
    p.expect('[')?;
    let mut events = Vec::new();
    p.skip_ws();
    if !p.eat(']') {
        loop {
            events.push(p.event()?);
            if !p.eat(',') {
                break;
            }
        }
        p.expect(']')?;
    }
    p.expect('}')?;
    Ok(events)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let k = self.string()?;
        if k != key {
            return Err(format!("expected key {key:?}, found {k:?}"));
        }
        self.expect(':')
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected number at byte {start}"))
    }

    fn event(&mut self) -> Result<TraceEvent, String> {
        self.expect('{')?;
        self.expect_key("t")?;
        let t = self.number()?;
        self.expect(',')?;
        self.expect_key("track")?;
        let track = self.string()?;
        let track = Track::parse(&track).ok_or_else(|| format!("bad track {track:?}"))?;
        self.expect(',')?;
        self.expect_key("kind")?;
        let kind = self.string()?;
        let kind = EventKind::parse(&kind).ok_or_else(|| format!("bad kind {kind:?}"))?;
        self.expect(',')?;
        self.expect_key("req")?;
        let req = self.number()?;
        self.expect(',')?;
        self.expect_key("a")?;
        let a = self.number()?;
        self.expect(',')?;
        self.expect_key("b")?;
        let b = self.number()?;
        self.expect('}')?;
        Ok(TraceEvent {
            time: SimTime::from_nanos(t),
            track,
            kind,
            req,
            a,
            b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, track: Track, kind: EventKind, req: ReqId) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            track,
            kind,
            req,
            a: 64,
            b: 128,
        }
    }

    #[test]
    fn disarmed_trace_records_nothing_and_skips_construction() {
        let t = Trace::default();
        let mut evaluated = false;
        t.record(SimTime::ZERO, || {
            evaluated = true;
            ev(Track::Sys, EventKind::Mark, 0, 0, 0)
        });
        assert!(!evaluated, "body must not be built while disarmed");
        assert!(t.is_empty());
    }

    #[test]
    fn armed_trace_records_until_cap() {
        let t = Trace::default();
        t.arm(2);
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), || {
                ev(Track::Cn(0), EventKind::Mark, i, i, 0)
            });
        }
        assert_eq!(t.len(), 2);
        let events = t.events();
        assert_eq!(events[0].req, 0);
        assert_eq!(events[1].req, 1);
        assert!(!t.armed());
    }

    #[test]
    fn rearming_clears_old_events() {
        let t = Trace::default();
        t.arm(4);
        t.record(SimTime::ZERO, || ev(Track::Sys, EventKind::Mark, 0, 0, 0));
        t.arm(4);
        assert!(t.is_empty());
    }

    #[test]
    fn mint_req_is_monotone_and_never_zero() {
        let t = Trace::default();
        assert_eq!(t.mint_req(), 1);
        assert_eq!(t.mint_req(), 2);
        // Minting works whether or not recording is armed.
        t.arm(8);
        assert_eq!(t.mint_req(), 3);
    }

    #[test]
    fn strided_minting_partitions_the_id_space() {
        // Worlds 0 and 2 of a 4-shard run must mint disjoint, globally
        // unique ids without talking to each other.
        let w0 = Trace::default();
        w0.shard_req_ids(0, 4);
        let w2 = Trace::default();
        w2.shard_req_ids(2, 4);
        assert_eq!((w0.mint_req(), w0.mint_req(), w0.mint_req()), (1, 5, 9));
        assert_eq!((w2.mint_req(), w2.mint_req(), w2.mint_req()), (3, 7, 11));
    }

    #[test]
    fn track_filter_drops_unowned_lanes_without_charging_the_cap() {
        let t = Trace::default();
        t.arm(2);
        t.set_track_filter(|track| matches!(track, Track::Cn(r) if r % 2 == 0));
        for r in 0..4u16 {
            t.record(SimTime::from_nanos(r as u64), || {
                ev(Track::Cn(r), EventKind::Mark, 0, 0, 0)
            });
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, Track::Cn(0));
        assert_eq!(events[1].track, Track::Cn(2));
    }

    #[test]
    fn shard_merge_is_stable_time_then_shard_order() {
        let s0 = vec![
            sample(10, Track::Cn(0), EventKind::ReadStart, 1),
            sample(30, Track::Cn(0), EventKind::ReadDone, 1),
        ];
        let s1 = vec![
            sample(10, Track::Cn(1), EventKind::ReadStart, 2),
            sample(20, Track::Cn(1), EventKind::ReadDone, 2),
        ];
        let merged = merge_shard_events(vec![s0, s1]);
        let keys: Vec<(u64, Track)> = merged
            .iter()
            .map(|e| (e.time.as_nanos(), e.track))
            .collect();
        assert_eq!(
            keys,
            vec![
                (10, Track::Cn(0)), // same instant: shard 0 first
                (10, Track::Cn(1)),
                (20, Track::Cn(1)),
                (30, Track::Cn(0)),
            ]
        );
    }

    #[test]
    fn renderers_produce_tracks() {
        let t = Trace::default();
        t.arm(16);
        t.record(SimTime::from_nanos(1_000_000), || {
            ev(Track::Cn(0), EventKind::ReadStart, 1, 0, 64)
        });
        t.record(SimTime::from_nanos(2_000_000), || {
            ev(Track::Ion(1), EventKind::ServeStart, 1, 0, 64)
        });
        t.record(SimTime::from_nanos(3_000_000), || {
            ev(Track::Cn(0), EventKind::ReadDone, 1, 0, 64)
        });
        let lines = t.render();
        assert_eq!(lines.lines().count(), 3);
        assert!(lines.contains("ion1"));
        assert!(lines.contains("serve-start"));
        let tracks = t.render_tracks();
        assert!(tracks.contains("cn0"));
        assert!(tracks.contains("ion1"));
        let cn0_line = tracks.lines().find(|l| l.starts_with("cn0")).unwrap();
        assert!(cn0_line.contains(" 2 "), "{cn0_line}");
    }

    #[test]
    fn summary_scratch_reuse_matches_fresh_renders() {
        let t = Trace::default();
        t.arm(64);
        for i in 0..8u64 {
            t.record(SimTime::from_nanos(i * 500), || {
                ev(Track::Cn((i % 3) as u16), EventKind::ReadStart, i, 0, 64)
            });
            t.record(SimTime::from_nanos(i * 500 + 100), || {
                ev(Track::Disk(0), EventKind::DiskStart, i, 0, 64)
            });
        }
        // Repeated renders through the recorder's scratch must be
        // identical to each other and to a from-scratch summary.
        let first = t.render_tracks();
        let second = t.render_tracks();
        assert_eq!(first, second);
        assert_eq!(first, render_track_summary(&t.events()));
        // Growing the trace between renders must be reflected, not stale.
        t.record(SimTime::from_nanos(9_000), || {
            ev(Track::Svc, EventKind::Mark, 0, 0, 0)
        });
        let third = t.render_tracks();
        assert!(third.contains("svc"));
        assert_eq!(third, render_track_summary(&t.events()));
        // One shared scratch reused across disjoint event sets: each
        // render reflects only the events passed to it.
        let mut scratch = TrackSummaryScratch::new();
        let all = scratch.render(&t.events());
        assert_eq!(all, third);
        let empty = scratch.render(&[]);
        assert_eq!(empty.lines().count(), 1, "header only: {empty}");
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let a = vec![
            sample(1, Track::Cn(0), EventKind::ReadStart, 1),
            sample(2, Track::Ion(0), EventKind::ServeStart, 1),
        ];
        let mut b = a.clone();
        assert_eq!(hash_events(&a), hash_events(&b));
        b[1].req = 2;
        assert_ne!(hash_events(&a), hash_events(&b));
        let mut c = a.clone();
        c.swap(0, 1);
        assert_ne!(hash_events(&a), hash_events(&c), "order must matter");
    }

    #[test]
    fn json_roundtrips_exactly() {
        let events = vec![
            sample(10, Track::Cn(3), EventKind::ReadStart, 7),
            sample(20, Track::Node(5), EventKind::NetTx, 7),
            sample(30, Track::Disk(2), EventKind::DiskStart, 7),
            sample(40, Track::Svc, EventKind::PtrOp, 0),
        ];
        let text = export_json(&events);
        let back = parse_json(&text).expect("parse");
        assert_eq!(events, back);
        assert_eq!(hash_events(&events), hash_events(&back));
    }

    #[test]
    fn json_handles_empty_trace() {
        let text = export_json(&[]);
        assert_eq!(parse_json(&text).unwrap(), Vec::new());
    }

    #[test]
    fn every_kind_roundtrips_its_name() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        for track in [
            Track::Cn(0),
            Track::Ion(12),
            Track::Node(300),
            Track::Disk(9),
            Track::Svc,
            Track::Sys,
        ] {
            assert_eq!(Track::parse(&track.to_string()), Some(track));
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"hash\":\"x\",\"events\":[{\"t\":1}]}").is_err());
        let good = export_json(&[sample(1, Track::Cn(0), EventKind::Mark, 0)]);
        assert!(parse_json(&good.replace("mark", "not-a-kind")).is_err());
    }
}
