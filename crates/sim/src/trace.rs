//! Event tracing.
//!
//! Off by default and free when off (call sites pass closures, so no
//! formatting happens unless a trace is armed). When enabled, components
//! append `(virtual time, label)` lines — the PFS layers use labels like
//! `cn3.read`, `ion1.server`, `cn0.prefetch.hit` — and the harness can
//! dump or render them as a per-track timeline. Bounded: recording stops
//! at the cap rather than growing without limit.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// `track.kind detail` label; the dot-prefix is the timeline track.
    pub label: String,
}

#[derive(Default)]
pub(crate) struct TraceState {
    events: RefCell<Vec<TraceEvent>>,
    cap: std::cell::Cell<usize>,
}

/// Handle to a simulation's trace buffer (cloned out of `Sim`).
#[derive(Clone, Default)]
pub struct Trace {
    pub(crate) state: Rc<TraceState>,
}

impl Trace {
    /// Arm tracing with space for `cap` events (0 disarms).
    pub fn arm(&self, cap: usize) {
        self.state.cap.set(cap);
        self.state.events.borrow_mut().clear();
    }

    /// True when events are being recorded (armed and not yet full).
    pub fn armed(&self) -> bool {
        self.state.cap.get() > self.state.events.borrow().len()
    }

    /// Record an event; `label` is only evaluated while armed.
    pub fn record(&self, now: SimTime, label: impl FnOnce() -> String) {
        if self.armed() {
            self.state.events.borrow_mut().push(TraceEvent {
                time: now,
                label: label(),
            });
        }
    }

    /// Events recorded so far (time order — recording order is already
    /// monotone in virtual time).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.events.borrow().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.events.borrow().len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render as one line per event: `    12.345ms track.kind detail`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.state.events.borrow().iter() {
            out.push_str(&format!("{:>14}  {}\n", format!("{}", e.time), e.label));
        }
        out
    }

    /// Group events into per-track lanes (track = label up to the first
    /// '.') and render a compact timeline summary: per track, the count
    /// and the first/last event times.
    pub fn render_tracks(&self) -> String {
        let mut tracks: BTreeMap<String, (usize, SimTime, SimTime)> = BTreeMap::new();
        for e in self.state.events.borrow().iter() {
            let track = e.label.split('.').next().unwrap_or("?").to_owned();
            let entry = tracks.entry(track).or_insert((0, e.time, e.time));
            entry.0 += 1;
            entry.1 = entry.1.min(e.time);
            entry.2 = entry.2.max(e.time);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>8} {:>14} {:>14}\n",
            "track", "events", "first", "last"
        ));
        for (track, (n, first, last)) in tracks {
            out.push_str(&format!(
                "{track:<10} {n:>8} {:>14} {:>14}\n",
                format!("{first}"),
                format!("{last}")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_trace_records_nothing_and_skips_formatting() {
        let t = Trace::default();
        let mut evaluated = false;
        t.record(SimTime::ZERO, || {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated, "label must not be formatted while disarmed");
        assert!(t.is_empty());
    }

    #[test]
    fn armed_trace_records_until_cap() {
        let t = Trace::default();
        t.arm(2);
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), || format!("a.b {i}"));
        }
        assert_eq!(t.len(), 2);
        let events = t.events();
        assert_eq!(events[0].label, "a.b 0");
        assert_eq!(events[1].label, "a.b 1");
        assert!(!t.armed());
    }

    #[test]
    fn rearming_clears_old_events() {
        let t = Trace::default();
        t.arm(4);
        t.record(SimTime::ZERO, || "old.x".into());
        t.arm(4);
        assert!(t.is_empty());
    }

    #[test]
    fn renderers_produce_tracks() {
        let t = Trace::default();
        t.arm(16);
        t.record(SimTime::from_nanos(1_000_000), || "cn0.read off=0".into());
        t.record(SimTime::from_nanos(2_000_000), || "ion1.server len=64".into());
        t.record(SimTime::from_nanos(3_000_000), || "cn0.hit".into());
        let lines = t.render();
        assert_eq!(lines.lines().count(), 3);
        assert!(lines.contains("ion1.server"));
        let tracks = t.render_tracks();
        assert!(tracks.contains("cn0"));
        assert!(tracks.contains("ion1"));
        // cn0 has two events.
        let cn0_line = tracks.lines().find(|l| l.starts_with("cn0")).unwrap();
        assert!(cn0_line.contains(" 2 "), "{cn0_line}");
    }
}
