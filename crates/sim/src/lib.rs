//! # paragon-sim — deterministic discrete-event simulation kernel
//!
//! Foundation of the Paragon PFS reproduction: a virtual clock, an event
//! heap, and a single-threaded async executor. Model code (compute-node
//! programs, PFS servers, disks) is written as plain `async fn`s; awaiting a
//! [`Sim::sleep`] or a [`sync`] primitive parks the task until the event
//! heap reaches the right virtual instant.
//!
//! Two properties the rest of the workspace depends on:
//!
//! * **Determinism.** No host-clock reads; heap ties break on a monotone
//!   sequence number; all randomness flows through [`Sim::rng`] streams
//!   derived from one seed. Equal `(seed, model)` ⇒ equal
//!   [`RunReport::trace_hash`].
//! * **FIFO fairness.** [`sync::Semaphore`] grants strictly in arrival
//!   order, matching the FIFO disk queues and ART active lists of the
//!   Paragon OS.
//!
//! ```
//! use paragon_sim::{Sim, SimDuration};
//!
//! let sim = Sim::new(42);
//! let s = sim.clone();
//! let h = sim.spawn(async move {
//!     s.sleep(SimDuration::from_millis(3)).await;
//!     s.now().as_millis_round()
//! });
//! sim.run();
//! assert_eq!(h.try_take(), Some(3));
//! ```

pub mod calendar;
mod executor;
mod fault;
mod kernel;
pub mod parallel;
mod rng;
pub mod sync;
mod task;
mod time;
mod trace;

pub use calendar::CalendarQueue;
pub use executor::{derive_seed, JoinHandle, RunReport, Sim, Sleep};
pub use fault::{DiskFault, FaultPlan, FaultStats, MeshVerdict};
pub use parallel::{
    merge_reports, run_sharded, run_sharded_profiled, KernelProfile, OutFrame, ShardCtx,
    ShardKernelProfile, ShardPlan, WorkerKernelProfile,
};
pub use rng::Rng;
pub use task::TaskId;
pub use time::{SimDuration, SimTime, NANOS_PER_MICRO, NANOS_PER_MILLI, NANOS_PER_SEC};
pub use trace::{
    ev, export_json, hash_events, merge_shard_events, parse_json, render_track_summary, EventBody,
    EventKind, ReqId, Trace, TraceEvent, Track, TrackSummaryScratch,
};
