//! A calendar (bucket) queue: the kernel's future event list.
//!
//! Events land in `nbuckets` time-sliced buckets, where bucket width is a
//! power of two (`1 << shift` nanoseconds) so indexing is a shift and mask.
//! A drain frontier (`cur_vb`, a *virtual* bucket number `time >> shift`)
//! walks forward one bucket-width at a time; `pop` returns the minimum
//! `(time, seq)` entry of the frontier bucket, which is the global minimum
//! because earlier buckets are already empty and later buckets hold only
//! later times.
//!
//! Determinism invariants (relied on by the trace hash and the byte-identity
//! tests):
//! - `pop` yields entries in exactly nondecreasing `(time, seq)` order —
//!   identical to a binary heap keyed on `(time, seq)`.
//! - equal timestamps always map to the same bucket, so the monotone `seq`
//!   tie-break gives FIFO order within a timestamp.
//! - resize and width heuristics depend only on queue contents, never on
//!   host state, so equal-seed runs resize identically.

use crate::time::SimTime;

/// Buckets never shrink below this; also the initial size.
const MIN_BUCKETS: usize = 16;
/// Bucket width is `1 << shift` ns; bounded so `time >> shift` stays useful.
const MAX_SHIFT: u32 = 62;
/// Initial bucket width: 2^17 ns ≈ 131 µs, the right order for a machine
/// whose message overheads are ~60 µs. Resizes retune it from live content.
const INITIAL_SHIFT: u32 = 17;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

/// Location + key of the current minimum, cached between `peek` and `pop`.
#[derive(Clone, Copy)]
struct Cached {
    bucket: usize,
    slot: usize,
    time: SimTime,
    seq: u64,
}

/// Calendar queue over `(time, seq)`-keyed entries carrying a `T` payload.
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    len: usize,
    /// Virtual bucket number (`time >> shift`) of the drain frontier. No
    /// entry has a smaller virtual bucket number.
    cur_vb: u64,
    cached: Option<Cached>,
    /// Lifetime count of `rebuild` calls (grow, shrink, or retune). Purely
    /// content-driven, so equal-seed runs count identically — safe to
    /// surface in deterministic reports.
    rebuilds: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            len: 0,
            cur_vb: 0,
            cached: None,
            rebuilds: 0,
        }
    }

    /// How many times the queue re-bucketed itself (resize churn).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    fn mask(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    /// Insert an entry. `seq` must be unique per queue (the kernel's monotone
    /// counter guarantees it); ordering is by `(time, seq)`.
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let vb = time.as_nanos() >> self.shift;
        if self.len == 0 || vb < self.cur_vb {
            self.cur_vb = vb;
        }
        let bucket = (vb & self.mask()) as usize;
        self.buckets[bucket].push(Entry { time, seq, item });
        self.len += 1;
        if let Some(c) = self.cached {
            if (time, seq) < (c.time, c.seq) {
                self.cached = Some(Cached {
                    bucket,
                    slot: self.buckets[bucket].len() - 1,
                    time,
                    seq,
                });
            }
        }
        if self.len > 2 * self.nbuckets() {
            let doubled = self.nbuckets() * 2;
            self.rebuild(doubled);
        }
    }

    /// Key of the minimum entry without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.locate()?;
        let c = self.cached.as_ref().expect("locate filled the cache");
        Some((c.time, c.seq))
    }

    /// Remove and return the minimum entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.locate()?;
        let c = self.cached.take().expect("locate filled the cache");
        let e = self.buckets[c.bucket].swap_remove(c.slot);
        self.len -= 1;
        // The popped entry was the global minimum, so every survivor's
        // virtual bucket number is >= its bucket: the frontier may jump here.
        self.cur_vb = e.time.as_nanos() >> self.shift;
        self.maybe_shrink();
        Some((e.time, e.seq, e.item))
    }

    /// Remove the entry with exactly this `(time, seq)` key, if present.
    pub fn cancel(&mut self, time: SimTime, seq: u64) -> Option<T> {
        let bucket = ((time.as_nanos() >> self.shift) & self.mask()) as usize;
        let slot = self.buckets[bucket]
            .iter()
            .position(|e| e.time == time && e.seq == seq)?;
        let e = self.buckets[bucket].swap_remove(slot);
        self.len -= 1;
        // swap_remove may have moved the cached entry; recompute lazily.
        self.cached = None;
        self.maybe_shrink();
        Some(e.item)
    }

    /// Find the global minimum and cache its location, advancing the
    /// frontier past empty buckets. Amortized O(1) when the width matches
    /// the event density; a full empty lap falls back to a direct search.
    fn locate(&mut self) -> Option<()> {
        if self.cached.is_some() {
            return Some(());
        }
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut vb = self.cur_vb;
        for _ in 0..self.nbuckets() {
            let bi = (vb & mask) as usize;
            let mut best: Option<Cached> = None;
            for (slot, e) in self.buckets[bi].iter().enumerate() {
                if e.time.as_nanos() >> self.shift != vb {
                    continue; // a later lap's entry sharing this bucket
                }
                let better = match &best {
                    Some(b) => (e.time, e.seq) < (b.time, b.seq),
                    None => true,
                };
                if better {
                    best = Some(Cached {
                        bucket: bi,
                        slot,
                        time: e.time,
                        seq: e.seq,
                    });
                }
            }
            if best.is_some() {
                self.cur_vb = vb;
                self.cached = best;
                return Some(());
            }
            vb += 1;
        }
        // A whole lap was empty: the next event is more than
        // nbuckets × width away. Direct-search for the global minimum and
        // jump the frontier to it.
        let mut best: Option<Cached> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (slot, e) in bucket.iter().enumerate() {
                let better = match &best {
                    Some(b) => (e.time, e.seq) < (b.time, b.seq),
                    None => true,
                };
                if better {
                    best = Some(Cached {
                        bucket: bi,
                        slot,
                        time: e.time,
                        seq: e.seq,
                    });
                }
            }
        }
        let b = best.expect("len > 0 but buckets were empty");
        self.cur_vb = b.time.as_nanos() >> self.shift;
        self.cached = Some(b);
        Some(())
    }

    fn maybe_shrink(&mut self) {
        if self.nbuckets() > MIN_BUCKETS && self.len * 4 < self.nbuckets() {
            let halved = self.nbuckets() / 2;
            self.rebuild(halved);
        }
    }

    /// Re-bucket every entry into `new_n` buckets, retuning the width to
    /// roughly twice the mean inter-event gap of the current content.
    fn rebuild(&mut self, new_n: usize) {
        self.rebuilds += 1;
        let new_n = new_n.max(MIN_BUCKETS).next_power_of_two();
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        if !entries.is_empty() {
            let mut min_t = u64::MAX;
            let mut max_t = 0u64;
            for e in &entries {
                let t = e.time.as_nanos();
                min_t = min_t.min(t);
                max_t = max_t.max(t);
            }
            // Degenerate content — e.g. a barrier releasing thousands of
            // wakes at one instant — makes `max_t == min_t` and collapses
            // the mean-gap estimate to zero. An unclamped zero gap would
            // drive `shift` to its minimum on every resize scan, so the
            // width is floored at one tick: every rebuild, including an
            // all-equal-timestamp cluster, yields a usable bucket width.
            let span = max_t - min_t;
            let gap = (span / entries.len() as u64).max(1);
            // floor(log2(gap)) + 1: a power-of-two width in [gap, 2·gap).
            self.shift = (64 - gap.leading_zeros()).min(MAX_SHIFT);
            self.cur_vb = min_t >> self.shift;
        }
        if self.buckets.len() != new_n {
            self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        }
        self.cached = None;
        let mask = (new_n - 1) as u64;
        for e in entries {
            let bi = ((e.time.as_nanos() >> self.shift) & mask) as usize;
            self.buckets[bi].push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = q.pop() {
            out.push((t.as_nanos(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(50), 0, 0);
        q.push(SimTime::from_nanos(10), 1, 1);
        q.push(SimTime::from_nanos(10), 2, 2);
        q.push(SimTime::from_nanos(7), 3, 3);
        assert_eq!(q.peek(), Some((SimTime::from_nanos(7), 3)));
        let order: Vec<u32> = drain(&mut q).iter().map(|&(_, _, v)| v).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn survives_growth_and_far_future_jumps() {
        let mut q = CalendarQueue::new();
        // Enough entries to force several doublings, spread over a huge
        // range so the direct-search fallback also triggers.
        let mut keys = Vec::new();
        for i in 0..500u64 {
            let t = (i * 7919) % 1000 * 1_000 + (i % 3) * 4_000_000_000_000;
            keys.push((t, i));
            q.push(SimTime::from_nanos(t), i, i as u32);
        }
        keys.sort();
        let popped: Vec<(u64, u64)> = drain(&mut q).iter().map(|&(t, s, _)| (t, s)).collect();
        assert_eq!(popped, keys);
    }

    #[test]
    fn cancel_removes_exactly_one_entry() {
        let mut q = CalendarQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::from_nanos(i * 100), i, i as u32);
        }
        assert_eq!(q.cancel(SimTime::from_nanos(300), 3), Some(3));
        assert_eq!(q.cancel(SimTime::from_nanos(300), 3), None);
        assert_eq!(q.len(), 9);
        let order: Vec<u64> = drain(&mut q).iter().map(|&(_, s, _)| s).collect();
        assert_eq!(order, vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn push_below_frontier_is_found_first() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(1_000_000), 0, 0);
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(0));
        // The frontier sits at 1 ms now; an earlier push must still win.
        q.push(SimTime::from_nanos(2_000_000), 1, 1);
        q.push(SimTime::from_nanos(5), 2, 2);
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(2));
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(1));
    }

    #[test]
    fn equal_timestamp_cluster_keeps_a_nonzero_width_and_fifo_order() {
        // Regression for the resize degenerate case: 10k entries sharing
        // one timestamp force several doubling rebuilds whose mean-gap
        // estimate is exactly zero. The width clamp must hold (shift >= 1)
        // and the monotone seq tie-break must still drain FIFO.
        let mut q = CalendarQueue::new();
        let t = 123_456_789u64;
        for s in 0..10_000u64 {
            q.push(SimTime::from_nanos(t), s, s as u32);
        }
        assert!(q.shift >= 1, "bucket width collapsed to zero");
        assert_eq!(q.len(), 10_000);
        // Drain half, land one later event, then drain the rest: the
        // cluster must come out in seq order with the tail event last.
        let mut got = Vec::new();
        for _ in 0..5_000 {
            got.push(q.pop().expect("cluster half"));
        }
        q.push(SimTime::from_nanos(t + 1), 10_000, 10_000);
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got.len(), 10_001);
        for (i, (time, seq, item)) in got.iter().take(10_000).enumerate() {
            assert_eq!(time.as_nanos(), t);
            assert_eq!(*seq, i as u64);
            assert_eq!(*item, i as u32);
        }
        assert_eq!(got[10_000].1, 10_000);
    }

    #[test]
    fn shrink_preserves_content() {
        let mut q = CalendarQueue::new();
        for i in 0..200u64 {
            q.push(SimTime::from_nanos(i * 333), i, i as u32);
        }
        for i in 0..195u64 {
            assert_eq!(q.pop().map(|(_, s, _)| s), Some(i));
        }
        let rest: Vec<u64> = drain(&mut q).iter().map(|&(_, s, _)| s).collect();
        assert_eq!(rest, vec![195, 196, 197, 198, 199]);
    }
}
