//! The sharded parallel kernel.
//!
//! One simulation becomes `S` replicated worlds — each a full [`Sim`]
//! with identical construction — that own disjoint slices of the machine
//! (compute-node ranks, I/O nodes, the service node). Worlds advance in
//! *conservative lookahead epochs*: every epoch, each shard publishes its
//! earliest pending event, a leader computes
//! `epoch_end = global_min + lookahead`, and each shard then drains
//! exactly the events with `t < epoch_end`. Cross-shard interactions
//! (mesh sends whose destination lives elsewhere) leave their world as
//! [`OutFrame`]s and are injected into the destination world at the
//! epoch barrier, sorted by `(arrival, src_shard, seq)`.
//!
//! Why this is deterministic and byte-identical across worker counts:
//!
//! * The epoch schedule is a pure function of published minima, which are
//!   themselves pure functions of each world's (deterministic) state —
//!   no thread observes anything that depends on host scheduling.
//! * A frame produced in epoch `e` has
//!   `arrival = send_time + propagation ≥ global_min + lookahead =
//!   epoch_end` (the fabric's minimum cross-shard latency *is* the
//!   lookahead), so its destination — which only drained `t < epoch_end`
//!   — has never advanced past it: no arrival is ever stale.
//! * Frames are injected in a sorted total order and each injection
//!   spawns tasks through the destination kernel's `(time, seq)` queue,
//!   so same-instant arrivals tie-break identically every run.
//!
//! Host threads appear *only* in this module, under per-site waivers;
//! `paragon-lint` bans them everywhere else (rule D2).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::executor::{RunReport, Sim};
use crate::time::SimTime;

/// A cross-shard interaction in flight between two worlds.
///
/// `payload` is fabric-defined (the mesh ships its typed message frame);
/// the destination world's registered injector downcasts it back.
pub struct OutFrame {
    /// Virtual instant the interaction lands in the destination world.
    pub arrival_ns: u64,
    /// Destination shard (owner of the destination node).
    pub dst_shard: u32,
    /// Shard that produced the frame.
    pub src_shard: u32,
    /// Which fabric injector consumes this frame (see
    /// [`ShardCtx::register_fabric`]).
    pub fabric: u32,
    /// Per-source monotone sequence number; with `src_shard` it makes the
    /// `(arrival, src, seq)` injection sort a total order.
    pub seq: u64,
    /// Fabric-defined content, downcast by the destination injector.
    pub payload: Box<dyn Any + Send>,
}

/// Callback wired by the driver to push an arriving cross-shard frame
/// into the local fabric.
type Injector = Box<dyn Fn(OutFrame)>;

/// Per-world view of the shard partition, installed on the [`Sim`] by
/// [`run_sharded`] before model construction. Fabrics consult it to
/// divert sends whose destination another shard owns.
pub struct ShardCtx {
    shard: u32,
    nshards: u32,
    lookahead_ns: u64,
    /// Raw node id → owning shard.
    owner: Arc<Vec<u32>>,
    outbox: RefCell<Vec<OutFrame>>,
    out_seq: Cell<u64>,
    injectors: RefCell<Vec<Injector>>,
}

impl ShardCtx {
    pub fn new(shard: u32, nshards: u32, lookahead_ns: u64, owner: Arc<Vec<u32>>) -> Rc<ShardCtx> {
        Rc::new(ShardCtx {
            shard,
            nshards,
            lookahead_ns,
            owner,
            outbox: RefCell::new(Vec::new()),
            out_seq: Cell::new(0),
            injectors: RefCell::new(Vec::new()),
        })
    }

    /// This world's shard index.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Total shard count.
    pub fn nshards(&self) -> u32 {
        self.nshards
    }

    /// The conservative lookahead window (minimum cross-shard latency).
    pub fn lookahead_ns(&self) -> u64 {
        self.lookahead_ns
    }

    /// Which shard owns raw node id `node`. Ids beyond the map (never
    /// produced by a well-formed partition) fall to shard 0.
    pub fn owner_of(&self, node: u16) -> u32 {
        self.owner.get(node as usize).copied().unwrap_or(0)
    }

    /// True when this world owns raw node id `node`.
    pub fn owns(&self, node: u16) -> bool {
        self.owner_of(node) == self.shard
    }

    /// Register the injector that consumes this fabric's frames in *this*
    /// world, returning the fabric id to stamp on exported frames.
    ///
    /// Ids are assigned in registration order, and every world constructs
    /// the same model in the same order, so fabric `n` means the same
    /// thing in every shard.
    pub fn register_fabric(&self, inject: impl Fn(OutFrame) + 'static) -> u32 {
        let mut injectors = self.injectors.borrow_mut();
        injectors.push(Box::new(inject));
        (injectors.len() - 1) as u32
    }

    /// Queue a frame for the destination shard; it is handed over at the
    /// next epoch barrier. `arrival` must be at least `lookahead_ns` in
    /// the destination's future — true by construction when the lookahead
    /// is the fabric's minimum cross-shard latency.
    pub fn export(
        &self,
        arrival: SimTime,
        dst_shard: u32,
        fabric: u32,
        payload: Box<dyn Any + Send>,
    ) {
        let seq = self.out_seq.get();
        self.out_seq.set(seq + 1);
        self.outbox.borrow_mut().push(OutFrame {
            arrival_ns: arrival.as_nanos(),
            dst_shard,
            src_shard: self.shard,
            fabric,
            seq,
            payload,
        });
    }

    fn take_outbox(&self) -> Vec<OutFrame> {
        std::mem::take(&mut *self.outbox.borrow_mut())
    }

    fn inject(&self, frame: OutFrame) {
        let injectors = self.injectors.borrow();
        match injectors.get(frame.fabric as usize) {
            Some(inject) => inject(frame),
            None => panic!(
                "shard {}: frame for unregistered fabric {}",
                self.shard, frame.fabric
            ),
        }
    }
}

/// How to cut one machine into epoch-synchronized worlds.
#[derive(Clone)]
pub struct ShardPlan {
    /// Number of worlds. `1` means the classic serial kernel: no shard
    /// context is installed and `run_sharded` degenerates to `Sim::run`.
    pub shards: usize,
    /// Host threads to spread the worlds over (`0` = one per host core,
    /// capped at `shards`). Cannot affect simulation bytes — it only
    /// changes which thread drives which world.
    pub workers: usize,
    /// Conservative lookahead: the minimum virtual latency of any
    /// cross-shard interaction. Must be positive when `shards > 1`.
    pub lookahead_ns: u64,
    /// Raw node id → owning shard.
    pub owner: Arc<Vec<u32>>,
    /// Seed for every world ([`Sim::new`]); worlds are replicas and must
    /// draw identical streams.
    pub seed: u64,
}

impl ShardPlan {
    /// A single-world plan — the serial kernel.
    pub fn serial(seed: u64) -> ShardPlan {
        ShardPlan {
            shards: 1,
            workers: 1,
            lookahead_ns: 0,
            owner: Arc::new(Vec::new()),
            seed,
        }
    }
}

/// Host-side (wall-clock) counters for one shard world, collected only
/// by [`run_sharded_profiled`]. Nothing here ever feeds back into the
/// simulation: bytes are identical with and without profiling. The
/// `_ns` fields are host time and vary run to run; `events_processed`,
/// `frames_*`, `epochs`, and `calendar_rebuilds` are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardKernelProfile {
    /// Shard index.
    pub shard: usize,
    /// Worker thread that drove this world (`shard % workers`).
    pub worker: usize,
    /// Barrier-synchronized epochs this world sat through.
    pub epochs: u64,
    /// Virtual events fired by this world's kernel.
    pub events_processed: u64,
    /// Cross-shard frames this world exported at epoch barriers.
    pub frames_out: u64,
    /// Cross-shard frames injected into this world.
    pub frames_in: u64,
    /// Host time spent draining this world's epochs.
    pub run_ns: u64,
    /// Calendar-queue resize churn (content-driven, deterministic).
    pub calendar_rebuilds: u64,
}

/// Host-side counters for one worker thread of the sharded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerKernelProfile {
    /// Worker index.
    pub worker: usize,
    /// Host time parked at epoch barriers — the synchronization cost of
    /// the conservative-lookahead protocol on this thread.
    pub barrier_stall_ns: u64,
    /// Host time not parked: building worlds, draining epochs, moving
    /// frames.
    pub busy_ns: u64,
    /// Virtual events fired across this worker's owned worlds.
    pub events_processed: u64,
}

/// What the parallel kernel measured about itself during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// Worlds in the partition.
    pub shards: usize,
    /// Host threads the worlds were spread over.
    pub workers: usize,
    /// End-to-end host time of the run (build through harvest).
    pub wall_ns: u64,
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ShardKernelProfile>,
    /// One entry per worker, in worker order.
    pub per_worker: Vec<WorkerKernelProfile>,
}

impl KernelProfile {
    /// Epochs driven to quiescence (identical across shards by
    /// construction; reported as the max for robustness).
    pub fn epochs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.epochs).max().unwrap_or(0)
    }

    /// Virtual events fired across every world.
    pub fn total_events(&self) -> u64 {
        self.per_shard.iter().map(|s| s.events_processed).sum()
    }

    /// Cross-shard frames handed over at epoch barriers.
    pub fn cross_shard_frames(&self) -> u64 {
        self.per_shard.iter().map(|s| s.frames_out).sum()
    }

    /// Calendar-queue rebuilds summed over every world.
    pub fn calendar_rebuilds(&self) -> u64 {
        self.per_shard.iter().map(|s| s.calendar_rebuilds).sum()
    }

    /// Host time parked at barriers, summed over workers.
    pub fn barrier_stall_ns(&self) -> u64 {
        self.per_worker.iter().map(|w| w.barrier_stall_ns).sum()
    }

    /// Fraction of total worker host time spent parked at epoch
    /// barriers. `0.0` for a serial run (no barriers exist).
    pub fn barrier_stall_frac(&self) -> f64 {
        let stall: u64 = self.barrier_stall_ns();
        let busy: u64 = self.per_worker.iter().map(|w| w.busy_ns).sum();
        let denom = stall + busy;
        if denom == 0 {
            0.0
        } else {
            stall as f64 / denom as f64
        }
    }

    /// Virtual events fired per host second, machine-wide.
    pub fn events_per_host_second(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.total_events() as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// Shared epoch state. One instance coordinates all worker threads.
struct EpochCore {
    barrier: Barrier,
    /// Per-shard earliest pending event (`u64::MAX` = quiescent).
    next_event: Vec<AtomicU64>,
    epoch_end: AtomicU64,
    done: AtomicBool,
    /// Per-shard frames awaiting injection at the next barrier.
    inboxes: Vec<Mutex<Vec<OutFrame>>>,
}

/// Merge per-shard run reports into one machine-level report: clock and
/// counters combine by max/sum, and the kernel trace hash folds the
/// per-shard hashes in shard order (order-sensitive, like the serial
/// fold — equal-seed equal-shape runs must still collide).
pub fn merge_reports(reports: &[RunReport]) -> RunReport {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in reports {
        for b in r.trace_hash.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    RunReport {
        end_time: reports
            .iter()
            .map(|r| r.end_time)
            .max()
            .unwrap_or(SimTime::ZERO),
        events_processed: reports.iter().map(|r| r.events_processed).sum(),
        unfinished_tasks: reports.iter().map(|r| r.unfinished_tasks).sum(),
        trace_hash: h,
    }
}

/// Build and drive `plan.shards` replicated worlds to quiescence.
///
/// `build(shard, sim)` constructs one world's model (the shard context is
/// already installed on `sim`) and returns whatever per-world state
/// `finish(shard, sim, state)` needs to harvest after the run. Returned
/// values come back in shard order.
///
/// One worker-owned shard world: its index, the simulation it runs, its
/// shard context, and the driver state handed back to `finish`.
type WorldSlot<W> = (usize, Sim, Rc<ShardCtx>, RefCell<Option<W>>);

/// With `shards == 1` no context is installed and the world runs on the
/// calling thread through the ordinary serial kernel — byte-identical to
/// code that never heard of sharding.
pub fn run_sharded<W, T, B, F>(plan: &ShardPlan, build: B, finish: F) -> Vec<T>
where
    T: Send,
    B: Fn(usize, &Sim) -> W + Sync,
    F: Fn(usize, &Sim, W) -> T + Sync,
{
    run_sharded_inner(plan, build, finish, false).0
}

/// [`run_sharded`] with kernel self-profiling: identical simulation
/// bytes, plus host-side counters (epochs, barrier stall, frame volume,
/// events/sec, calendar churn) harvested from every shard and worker.
///
/// Profiling reads the host clock — something the kernel otherwise never
/// does — which is why it is a separate entry point rather than a
/// [`ShardPlan`] knob: a plan describes the deterministic partition, and
/// no configuration of it may imply wall-clock reads. The counters are
/// write-only from the simulation's point of view, so `--workers` byte
/// identity holds under profiling too.
pub fn run_sharded_profiled<W, T, B, F>(
    plan: &ShardPlan,
    build: B,
    finish: F,
) -> (Vec<T>, KernelProfile)
where
    T: Send,
    B: Fn(usize, &Sim) -> W + Sync,
    F: Fn(usize, &Sim, W) -> T + Sync,
{
    let (out, prof) = run_sharded_inner(plan, build, finish, true);
    (out, prof.unwrap_or_default())
}

fn run_sharded_inner<W, T, B, F>(
    plan: &ShardPlan,
    build: B,
    finish: F,
    profile: bool,
) -> (Vec<T>, Option<KernelProfile>)
where
    T: Send,
    B: Fn(usize, &Sim) -> W + Sync,
    F: Fn(usize, &Sim, W) -> T + Sync,
{
    assert!(plan.shards >= 1, "a machine has at least one shard");
    // Host-clock reads are confined to these two closures and gated on
    // `profile`, so an unprofiled run performs none at all.
    let tick = |on: bool| on.then(std::time::Instant::now);
    let lap =
        |t: &Option<std::time::Instant>| t.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    if plan.shards == 1 {
        let wall = tick(profile);
        let sim = Sim::new(plan.seed);
        let world = build(0, &sim);
        sim.run();
        let out = vec![finish(0, &sim, world)];
        let prof = profile.then(|| {
            let report = sim.report();
            let wall_ns = lap(&wall);
            KernelProfile {
                shards: 1,
                workers: 1,
                wall_ns,
                per_shard: vec![ShardKernelProfile {
                    shard: 0,
                    worker: 0,
                    epochs: 0,
                    events_processed: report.events_processed,
                    frames_out: 0,
                    frames_in: 0,
                    run_ns: wall_ns,
                    calendar_rebuilds: sim.calendar_rebuilds(),
                }],
                per_worker: vec![WorkerKernelProfile {
                    worker: 0,
                    barrier_stall_ns: 0,
                    busy_ns: wall_ns,
                    events_processed: report.events_processed,
                }],
            }
        });
        return (out, prof);
    }
    assert!(
        plan.lookahead_ns > 0,
        "conservative epochs need a positive lookahead"
    );

    let nshards = plan.shards;
    // paragon-lint: allow(D2) — worker count only maps worlds to host threads; the epoch schedule below is a pure function of published per-shard minima, so simulation bytes cannot depend on it
    let workers = match plan.workers {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .min(nshards)
    .max(1);

    let core = EpochCore {
        barrier: Barrier::new(workers),
        next_event: (0..nshards).map(|_| AtomicU64::new(u64::MAX)).collect(),
        epoch_end: AtomicU64::new(0),
        done: AtomicBool::new(false),
        inboxes: (0..nshards).map(|_| Mutex::new(Vec::new())).collect(),
    };
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    let shard_profs: Mutex<Vec<ShardKernelProfile>> = Mutex::new(Vec::new());
    let worker_profs: Mutex<Vec<WorkerKernelProfile>> = Mutex::new(Vec::new());
    let wall = tick(profile);

    // paragon-lint: allow(D2) — the only sanctioned host-thread site: worlds never share mutable state outside the barrier-fenced inbox handoff, and frames are injected in sorted (arrival, src, seq) order, so every interleaving of the OS scheduler yields the same bytes
    std::thread::scope(|scope| {
        for w in 0..workers {
            let core = &core;
            let results = &results;
            let shard_profs = &shard_profs;
            let worker_profs = &worker_profs;
            let build = &build;
            let finish = &finish;
            let tick = &tick;
            let lap = &lap;
            scope.spawn(move || {
                let worker_t0 = tick(profile);
                // Shards round-robin over workers: thread `w` owns every
                // shard `k` with `k % workers == w`.
                let owned: Vec<usize> = (w..nshards).step_by(workers).collect();
                let worlds: Vec<WorldSlot<W>> = owned
                    .iter()
                    .map(|&k| {
                        let sim = Sim::new(plan.seed);
                        let ctx = ShardCtx::new(
                            k as u32,
                            nshards as u32,
                            plan.lookahead_ns,
                            plan.owner.clone(),
                        );
                        sim.set_shard_ctx(ctx.clone());
                        let world = build(k, &sim);
                        (k, sim, ctx, RefCell::new(Some(world)))
                    })
                    .collect();

                // Per-owned-world (frames_out, frames_in, run_ns)
                // accumulators, indexed like `worlds`; folded into the
                // shard profiles at harvest.
                let mut accs = vec![(0u64, 0u64, 0u64); worlds.len()];
                let mut stall_ns = 0u64;
                let mut epochs = 0u64;

                loop {
                    // Publish: earliest pending event per owned world
                    // (draining ready tasks first, so freshly injected
                    // arrivals have registered their sleeps).
                    for (k, sim, _, _) in &worlds {
                        let t = sim
                            .next_event_time()
                            .map(|t| t.as_nanos())
                            .unwrap_or(u64::MAX);
                        core.next_event[*k].store(t, Ordering::SeqCst);
                    }
                    // The barrier leader turns the minima into one epoch.
                    let t = tick(profile);
                    let leader = core.barrier.wait().is_leader();
                    stall_ns += lap(&t);
                    if leader {
                        let min = core
                            .next_event
                            .iter()
                            .map(|t| t.load(Ordering::SeqCst))
                            .min()
                            .unwrap_or(u64::MAX);
                        if min == u64::MAX {
                            core.done.store(true, Ordering::SeqCst);
                        } else {
                            core.epoch_end
                                .store(min.saturating_add(plan.lookahead_ns), Ordering::SeqCst);
                        }
                    }
                    let t = tick(profile);
                    core.barrier.wait();
                    stall_ns += lap(&t);
                    if core.done.load(Ordering::SeqCst) {
                        break;
                    }
                    epochs += 1;
                    // Drain the epoch; hand produced frames to their
                    // destination shards.
                    let end = SimTime::from_nanos(core.epoch_end.load(Ordering::SeqCst));
                    for (i, (_, sim, ctx, _)) in worlds.iter().enumerate() {
                        let t = tick(profile);
                        sim.run_until_exclusive(end);
                        accs[i].2 += lap(&t);
                        let frames = ctx.take_outbox();
                        accs[i].0 += frames.len() as u64;
                        for frame in frames {
                            let dst = frame.dst_shard as usize;
                            core.inboxes[dst]
                                .lock()
                                .expect("inbox lock poisoned")
                                .push(frame);
                        }
                    }
                    let t = tick(profile);
                    core.barrier.wait();
                    stall_ns += lap(&t);
                    // Inject arrivals in a sorted total order, then let
                    // the spawned delivery tasks register their sleeps.
                    for (i, (k, sim, ctx, _)) in worlds.iter().enumerate() {
                        let mut frames = std::mem::take(
                            &mut *core.inboxes[*k].lock().expect("inbox lock poisoned"),
                        );
                        frames.sort_by_key(|f| (f.arrival_ns, f.src_shard, f.seq));
                        accs[i].1 += frames.len() as u64;
                        for frame in frames {
                            ctx.inject(frame);
                        }
                        sim.flush_ready();
                    }
                }

                if profile {
                    let mut mine = Vec::with_capacity(worlds.len());
                    let mut events = 0u64;
                    for (i, (k, sim, _, _)) in worlds.iter().enumerate() {
                        let report = sim.report();
                        events += report.events_processed;
                        mine.push(ShardKernelProfile {
                            shard: *k,
                            worker: w,
                            epochs,
                            events_processed: report.events_processed,
                            frames_out: accs[i].0,
                            frames_in: accs[i].1,
                            run_ns: accs[i].2,
                            calendar_rebuilds: sim.calendar_rebuilds(),
                        });
                    }
                    shard_profs
                        .lock()
                        .expect("profile lock poisoned")
                        .extend(mine);
                    worker_profs
                        .lock()
                        .expect("profile lock poisoned")
                        .push(WorkerKernelProfile {
                            worker: w,
                            barrier_stall_ns: stall_ns,
                            busy_ns: lap(&worker_t0).saturating_sub(stall_ns),
                            events_processed: events,
                        });
                }

                let mut harvested: Vec<(usize, T)> = Vec::with_capacity(worlds.len());
                for (k, sim, _, world) in &worlds {
                    let world = world.borrow_mut().take().expect("world harvested once");
                    harvested.push((*k, finish(*k, sim, world)));
                }
                results
                    .lock()
                    .expect("results lock poisoned")
                    .extend(harvested);
            });
        }
    });

    let prof = profile.then(|| {
        let mut per_shard = shard_profs.into_inner().expect("profile lock poisoned");
        per_shard.sort_by_key(|p| p.shard);
        let mut per_worker = worker_profs.into_inner().expect("profile lock poisoned");
        per_worker.sort_by_key(|p| p.worker);
        KernelProfile {
            shards: nshards,
            workers,
            wall_ns: lap(&wall),
            per_shard,
            per_worker,
        }
    });
    let mut out = results.into_inner().expect("results lock poisoned");
    out.sort_by_key(|(k, _)| *k);
    (out.into_iter().map(|(_, t)| t).collect(), prof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const LOOKAHEAD: u64 = 60_000; // 60 µs, paragon-ish

    /// One world's `(receive time, counter value)` log.
    type RingLog = Vec<(u64, u64)>;

    /// A toy fabric: worlds pass a counter around a ring. Shard `k`
    /// receives `v`, logs `(now, v)`, and forwards `v + 1` to shard
    /// `(k + 1) % S` with the minimum latency, until `v` reaches `limit`.
    /// Exercises multi-hop causality across many epochs.
    fn ring_run(shards: usize, workers: usize, limit: u64) -> Vec<(usize, RunReport, RingLog)> {
        let plan = ShardPlan {
            shards,
            workers,
            lookahead_ns: LOOKAHEAD,
            owner: Arc::new((0..shards as u32).collect()),
            seed: 7,
        };
        run_sharded(
            &plan,
            |k, sim| {
                let log: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
                if let Some(ctx) = sim.shard_ctx() {
                    let fabric = {
                        let sim = sim.clone();
                        let ctx2 = ctx.clone();
                        let log = log.clone();
                        ctx.register_fabric(move |frame: OutFrame| {
                            let v = *frame
                                .payload
                                .downcast::<u64>()
                                .expect("ring payload is u64");
                            let at = SimTime::from_nanos(frame.arrival_ns);
                            let s = sim.clone();
                            let ctx = ctx2.clone();
                            let log = log.clone();
                            sim.spawn_named("ring-deliver", async move {
                                s.sleep_until(at).await;
                                log.borrow_mut().push((s.now().as_nanos(), v));
                                if v < limit {
                                    let dst = (ctx.shard() + 1) % ctx.nshards();
                                    ctx.export(
                                        s.now() + SimDuration::from_nanos(LOOKAHEAD),
                                        dst,
                                        0,
                                        Box::new(v + 1),
                                    );
                                }
                            });
                        })
                    };
                    if k == 0 {
                        let s = sim.clone();
                        let ctx = ctx.clone();
                        sim.spawn_named("ring-kick", async move {
                            s.sleep(SimDuration::from_micros(5)).await;
                            ctx.export(
                                s.now() + SimDuration::from_nanos(LOOKAHEAD),
                                1 % ctx.nshards(),
                                fabric,
                                Box::new(0u64),
                            );
                        });
                    }
                }
                log
            },
            |k, sim, log| (k, sim.report(), log.borrow().clone()),
        )
    }

    #[test]
    fn ring_crosses_shards_at_the_fabric_latency() {
        let out = ring_run(2, 2, 5);
        let all: Vec<(u64, u64)> = out.iter().flat_map(|(_, _, log)| log.clone()).collect();
        // Six hops (v = 0..=5), each landing one lookahead after the
        // previous, starting from the 5 µs kick.
        assert_eq!(all.len(), 6);
        for (i, &(t, v)) in {
            let mut sorted = all.clone();
            sorted.sort();
            sorted
        }
        .iter()
        .enumerate()
        {
            assert_eq!(v, i as u64);
            assert_eq!(t, 5_000 + (i as u64 + 1) * LOOKAHEAD);
        }
    }

    #[test]
    fn worker_count_cannot_change_the_bytes() {
        // Same shard count, different host-thread counts: every world's
        // log and kernel report must match exactly.
        let one = ring_run(4, 1, 25);
        let four = ring_run(4, 4, 25);
        let host_cores = ring_run(4, 0, 25);
        assert_eq!(one, four);
        assert_eq!(one, host_cores);
    }

    #[test]
    fn single_shard_plan_is_the_serial_kernel() {
        // shards == 1 installs no context and runs inline; the report
        // must equal a hand-driven serial Sim of the same model.
        let plan = ShardPlan::serial(3);
        let sharded = run_sharded(
            &plan,
            |_, sim| {
                assert!(sim.shard_ctx().is_none(), "serial world got a shard ctx");
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(10)).await;
                    s.sleep(SimDuration::from_micros(10)).await;
                });
            },
            |_, sim, ()| sim.report(),
        );
        let serial = {
            let sim = Sim::new(3);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(10)).await;
                s.sleep(SimDuration::from_micros(10)).await;
            });
            sim.run()
        };
        assert_eq!(sharded, vec![serial]);
    }

    #[test]
    fn merged_report_folds_shard_hashes_in_order() {
        let out = ring_run(2, 2, 3);
        let reports: Vec<RunReport> = out.iter().map(|(_, r, _)| r.clone()).collect();
        let merged = merge_reports(&reports);
        assert_eq!(
            merged.end_time,
            reports.iter().map(|r| r.end_time).max().unwrap()
        );
        assert_eq!(
            merged.events_processed,
            reports.iter().map(|r| r.events_processed).sum::<u64>()
        );
        // Order-sensitive: swapping shard hashes must change the fold.
        let mut swapped = reports.clone();
        swapped.swap(0, 1);
        assert_ne!(merged.trace_hash, merge_reports(&swapped).trace_hash);
    }

    #[test]
    fn quiescent_worlds_terminate_without_spinning() {
        // No cross-shard traffic at all: the first publish round sees
        // all-MAX and the run ends with empty logs.
        let plan = ShardPlan {
            shards: 3,
            workers: 2,
            lookahead_ns: LOOKAHEAD,
            owner: Arc::new(vec![0, 1, 2]),
            seed: 1,
        };
        let reports = run_sharded(&plan, |_, _| (), |_, sim, ()| sim.report());
        assert_eq!(reports.len(), 3);
        for r in reports {
            assert_eq!(r.events_processed, 0);
        }
    }
}
