//! The deterministic single-threaded executor.
//!
//! A [`Sim`] is a cheaply clonable handle to one simulation world. Model
//! code is written as ordinary `async fn`s that are spawned onto the
//! executor; awaiting [`Sim::sleep`] (or any synchronization primitive from
//! [`crate::sync`]) parks the task until the event heap reaches the right
//! virtual instant. `Sim::run` drives everything to completion and returns a
//! report of what happened.
//!
//! The executor never consults the host clock and breaks every tie with a
//! monotone sequence number, so a given `(seed, model)` pair always produces
//! the identical event trace — the property tests in this crate assert it.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::fault::FaultPlan;
use crate::kernel::Kernel;
use crate::parallel::ShardCtx;
use crate::rng::Rng;
use crate::task::{ReadyQueue, TaskId, TaskTable};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EventBody, ReqId, Trace};

/// Summary of a completed (or exhausted) simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Number of timer events fired.
    pub events_processed: u64,
    /// Tasks that were spawned but never completed (deadlocked or still
    /// waiting when the horizon was reached). Zero for a clean run.
    pub unfinished_tasks: usize,
    /// Hash of the full `(time, seq)` event trace; equal-seed runs of the
    /// same model must produce equal hashes.
    pub trace_hash: u64,
}

/// Handle to a simulation world. Clone freely; all clones share state.
#[derive(Clone)]
pub struct Sim {
    kernel: Rc<RefCell<Kernel>>,
    tasks: Rc<RefCell<TaskTable>>,
    ready: ReadyQueue,
    seed: u64,
    trace: Trace,
    faults: FaultPlan,
    /// Set only when this world is one shard of a partitioned machine
    /// (see [`crate::parallel`]). `None` — the default — leaves every
    /// code path exactly as the serial kernel executes it.
    shard: Rc<RefCell<Option<Rc<ShardCtx>>>>,
}

impl Sim {
    /// Create a fresh simulation world. `seed` feeds every RNG derived via
    /// [`Sim::rng`]; two worlds with the same seed and model are identical.
    pub fn new(seed: u64) -> Self {
        Sim {
            kernel: Rc::new(RefCell::new(Kernel::new())),
            tasks: Rc::new(RefCell::new(TaskTable::default())),
            ready: ReadyQueue::default(),
            seed,
            trace: Trace::default(),
            faults: FaultPlan::new(derive_seed(seed, "fault-plan")),
            shard: Rc::new(RefCell::new(None)),
        }
    }

    /// Install the cross-shard context. Called once by
    /// [`crate::parallel::run_sharded`] before any model code is built;
    /// fabrics (the mesh) consult it to divert sends whose destination
    /// lives in another shard's world.
    pub fn set_shard_ctx(&self, ctx: Rc<ShardCtx>) {
        *self.shard.borrow_mut() = Some(ctx);
    }

    /// The cross-shard context, when this world is one shard of a
    /// partitioned machine. `None` on a serial (single-shard) run.
    pub fn shard_ctx(&self) -> Option<Rc<ShardCtx>> {
        self.shard.borrow().clone()
    }

    /// This world's flight recorder. Arm it with [`Trace::arm`] to make
    /// [`Sim::emit`] calls record; disarmed tracing costs nothing.
    pub fn tracer(&self) -> Trace {
        self.trace.clone()
    }

    /// This world's fault-injection plan. Disarmed by default: configure
    /// it, then [`FaultPlan::arm`] after setup I/O completes. Its draws
    /// come from the `"fault-plan"` RNG stream of this world's seed.
    pub fn faults(&self) -> FaultPlan {
        self.faults.clone()
    }

    /// Record a trace event at the current virtual time; `body` is only
    /// evaluated when the recorder is armed, so a disarmed simulation
    /// performs no per-event work or allocation.
    pub fn emit(&self, body: impl FnOnce() -> EventBody) {
        self.trace.record(self.now(), body);
    }

    /// Mint a fresh request id for threading one logical operation through
    /// the trace (client → ART → mesh → server → disk). Monotone from 1.
    pub fn mint_req(&self) -> ReqId {
        self.trace.mint_req()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.borrow().now
    }

    /// The base seed this world was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG stream named by `label`. The same `(seed, label)`
    /// always yields the same stream, independent of call order.
    pub fn rng(&self, label: &str) -> Rng {
        Rng::seed_from_u64(derive_seed(self.seed, label))
    }

    /// Spawn a task. The returned [`JoinHandle`] can be awaited for the
    /// task's output; dropping it detaches the task (it keeps running).
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        self.spawn_named("task", fut)
    }

    /// Spawn with a diagnostic label (shows up in deadlock reports).
    pub fn spawn_named<F, T>(&self, label: &'static str, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let state: Rc<RefCell<JoinState<T>>> = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let state2 = state.clone();
        let wrapped: Pin<Box<dyn Future<Output = ()>>> = Box::pin(async move {
            let value = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(value);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        let id = self.tasks.borrow_mut().insert(label, wrapped, &self.ready);
        self.ready.push(id);
        JoinHandle { id, state }
    }

    /// A future that completes `d` of virtual time from now.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// A future that completes at virtual instant `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            scheduled: false,
        }
    }

    /// Yield to every other task runnable at the current instant, then
    /// resume. Goes through the event heap, so ordering stays deterministic.
    pub fn yield_now(&self) -> Sleep {
        self.sleep(SimDuration::ZERO)
    }

    /// Run `fut` but give up after `d` of virtual time. Returns `None` on
    /// timeout (the inner future is dropped, cancelling whatever it owned).
    pub async fn timeout<F, T>(&self, d: SimDuration, fut: F) -> Option<T>
    where
        F: Future<Output = T>,
    {
        let sleep = self.sleep(d);
        let mut sleep = std::pin::pin!(sleep);
        let mut fut = std::pin::pin!(fut);
        std::future::poll_fn(move |cx| {
            if let Poll::Ready(v) = fut.as_mut().poll(cx) {
                return Poll::Ready(Some(v));
            }
            if sleep.as_mut().poll(cx).is_ready() {
                return Poll::Ready(None);
            }
            Poll::Pending
        })
        .await
    }

    /// Drive the world until no task can make progress (clean completion or
    /// deadlock) and report what happened.
    pub fn run(&self) -> RunReport {
        self.run_inner(SimTime::MAX)
    }

    /// Drive the world, but stop once virtual time would pass `horizon`.
    pub fn run_until(&self, horizon: SimTime) -> RunReport {
        self.run_inner(horizon)
    }

    fn run_inner(&self, horizon: SimTime) -> RunReport {
        loop {
            self.drain_ready();
            let next = self.kernel.borrow_mut().next_event_time();
            match next {
                Some(t) if t <= horizon => {
                    let waker = self
                        .kernel
                        .borrow_mut()
                        .fire_next()
                        .expect("heap entry vanished");
                    waker.wake();
                }
                _ => break,
            }
        }
        self.report()
    }

    /// Drive the world, firing only events *strictly before* `end`.
    ///
    /// This is the epoch primitive of the parallel kernel: a shard may
    /// safely execute every event with `t < epoch_end` because any
    /// cross-shard arrival produced elsewhere during the same epoch lands
    /// at `t ≥ global_min + lookahead = epoch_end`. The strict bound (vs
    /// [`Sim::run_until`]'s inclusive one) keeps the boundary instant in
    /// the *next* epoch, after those arrivals have been injected.
    pub fn run_until_exclusive(&self, end: SimTime) -> RunReport {
        loop {
            self.drain_ready();
            let next = self.kernel.borrow_mut().next_event_time();
            match next {
                Some(t) if t < end => {
                    let waker = self
                        .kernel
                        .borrow_mut()
                        .fire_next()
                        .expect("heap entry vanished");
                    waker.wake();
                }
                _ => break,
            }
        }
        self.report()
    }

    /// Poll every woken task without advancing virtual time. The parallel
    /// kernel calls this after injecting cross-shard arrivals so that
    /// their delivery sleeps are registered in the event queue *before*
    /// the next epoch's minimum is published.
    pub fn flush_ready(&self) {
        self.drain_ready();
    }

    /// Earliest pending timer deadline, after letting every runnable task
    /// register its wakes. `None` means this world is fully quiescent.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.drain_ready();
        self.kernel.borrow_mut().next_event_time()
    }

    /// Calendar-queue resize churn so far: how many times the event
    /// queue re-bucketed itself. Content-driven and deterministic; the
    /// kernel self-profiler reports it per shard.
    pub fn calendar_rebuilds(&self) -> u64 {
        self.kernel.borrow().calendar_rebuilds()
    }

    /// Snapshot the run counters without driving anything.
    pub fn report(&self) -> RunReport {
        let kernel = self.kernel.borrow();
        RunReport {
            end_time: kernel.now,
            events_processed: kernel.events_processed,
            unfinished_tasks: self.tasks.borrow().len(),
            trace_hash: kernel.trace_hash,
        }
    }

    /// Tear the world down: drop every remaining task (server loops and
    /// parked waiters included). Parked futures own `Sim` clones while
    /// the task map lives *inside* `Sim`, an `Rc` cycle that would
    /// otherwise keep the whole world alive forever; harnesses that
    /// build many worlds (Criterion runs thousands) must break it when
    /// a run finishes. The world must not be `run` again afterwards.
    pub fn shutdown(&self) {
        self.tasks.borrow_mut().clear();
        // The shard context's fabric injectors capture model handles that
        // in turn hold `Sim` clones — the same cycle shape as parked
        // tasks. Dropping the context here breaks it.
        self.shard.borrow_mut().take();
    }

    /// Labels of tasks that have not completed, in spawn order. Useful in
    /// deadlock triage.
    pub fn pending_task_labels(&self) -> Vec<&'static str> {
        self.tasks.borrow().live_labels()
    }

    /// Poll woken tasks until the ready ring is empty.
    fn drain_ready(&self) {
        while let Some(id) = self.ready.pop() {
            // Take the future out so model code may re-enter `Sim` freely
            // while we poll, and so wakes during the poll are harmless.
            // The slot's cached waker is cloned (an `Arc` bump), not built.
            let (mut fut, waker) = {
                let mut tasks = self.tasks.borrow_mut();
                match tasks.get_live(id) {
                    Some(slot) => match slot.future.take() {
                        Some(f) => {
                            let w = slot.waker();
                            (f, w)
                        }
                        // Already being polled higher up the stack or woken
                        // twice; the in-progress poll will see the wake.
                        None => continue,
                    },
                    // Task already completed — or its slot was reused and
                    // the generation check failed. Stale wake; drop it.
                    None => continue,
                }
            };
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    self.tasks.borrow_mut().remove(id);
                }
                Poll::Pending => {
                    if let Some(slot) = self.tasks.borrow_mut().get_live(id) {
                        slot.future = Some(fut);
                    }
                }
            }
        }
    }

    pub(crate) fn schedule_wake(&self, deadline: SimTime, waker: Waker) {
        self.kernel.borrow_mut().schedule_wake(deadline, waker);
    }
}

/// Derive a child seed from a base seed and a label (FNV-1a).
pub fn derive_seed(base: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Timer future returned by [`Sim::sleep`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    scheduled: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // Always take at least one trip through the event heap, so that a
        // zero-length sleep still yields to other runnable tasks.
        if !self.scheduled {
            self.scheduled = true;
            let deadline = self.deadline;
            self.sim.schedule_wake(deadline, cx.waker().clone());
            return Poll::Pending;
        }
        if self.sim.now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task; await it for the task's output.
pub struct JoinHandle<T> {
    id: TaskId,
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// True once the task has produced its output.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }

    /// Take the output if the task already finished (without awaiting).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn sleep_advances_virtual_time_only() {
        let sim = Sim::new(1);
        let done = Rc::new(Cell::new(false));
        let d2 = done.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(3600)).await;
            d2.set(true);
        });
        let report = sim.run();
        assert!(done.get());
        assert_eq!(
            report.end_time,
            SimTime::ZERO + SimDuration::from_secs(3600)
        );
        assert_eq!(report.unfinished_tasks, 0);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let outer = sim.spawn(async move {
            let inner = s.spawn(async { 40 + 2 });
            inner.await
        });
        sim.run();
        assert_eq!(outer.try_take(), Some(42));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        // Two sleepers with interleaved deadlines must wake in time order.
        let sim = Sim::new(7);
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for (who, start_ms) in [(1u32, 10u64), (2, 5)] {
            let s = sim.clone();
            let log = log.clone();
            sim.spawn(async move {
                for i in 0..3u64 {
                    s.sleep(SimDuration::from_millis(start_ms + i * 10)).await;
                    log.borrow_mut().push((who, s.now().as_nanos()));
                }
            });
        }
        sim.run();
        let times: Vec<u64> = log.borrow().iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(
            times,
            sorted,
            "wakeups out of time order: {:?}",
            log.borrow()
        );
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(100)).await;
        });
        let report = sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(report.unfinished_tasks, 1);
        assert_eq!(sim.pending_task_labels(), vec!["task"]);
    }

    #[test]
    fn timeout_cancels_slow_future() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let slow = s.sleep(SimDuration::from_secs(10));
            s.timeout(SimDuration::from_secs(1), slow).await
        });
        let report = sim.run();
        assert_eq!(h.try_take(), Some(None));
        // The world must not have run to the 10 s deadline: the slow sleep
        // was dropped, but its heap entry still fires (harmlessly) at 10 s.
        // What matters is the timeout resolved at 1 s.
        assert!(report.end_time >= SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn timeout_returns_value_when_fast() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move { s.timeout(SimDuration::from_secs(5), async { 9 }).await });
        sim.run();
        assert_eq!(h.try_take(), Some(Some(9)));
    }

    #[test]
    fn equal_seeds_produce_equal_traces() {
        fn build_and_run(seed: u64) -> RunReport {
            let sim = Sim::new(seed);
            for n in 0..5u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for i in 0..4u64 {
                        s.sleep(SimDuration::from_micros((n + 1) * 7 + i * 13))
                            .await;
                    }
                });
            }
            sim.run()
        }
        let a = build_and_run(42);
        let b = build_and_run(42);
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_separates_streams() {
        assert_ne!(derive_seed(1, "disk0"), derive_seed(1, "disk1"));
        assert_ne!(derive_seed(1, "disk0"), derive_seed(2, "disk0"));
        assert_eq!(derive_seed(3, "x"), derive_seed(3, "x"));
    }

    #[test]
    fn stale_wake_to_freed_slot_is_dropped() {
        let sim = Sim::new(1);
        let h = sim.spawn(async {});
        sim.run();
        assert!(h.is_finished());
        // The task's slot is free; a wake addressed to it must be ignored.
        sim.ready.push(h.id());
        let report = sim.run();
        assert_eq!(report.unfinished_tasks, 0);
    }

    #[test]
    fn stale_wake_to_reused_slot_is_not_misdelivered() {
        // The generational-index ABA case: task A completes, its slot is
        // reused by task B, then a wake carrying A's old id arrives. The
        // generation mismatch must drop it — B must not be polled.
        let sim = Sim::new(1);
        let a = sim.spawn(async {});
        sim.run();
        let old_id = a.id();

        // B: counts its polls and parks forever without registering a waker
        // anywhere, so only a (mis)delivered wake could poll it again.
        let polls = Rc::new(Cell::new(0u32));
        let p = polls.clone();
        let b = sim.spawn(async move {
            std::future::poll_fn(move |_| {
                p.set(p.get() + 1);
                Poll::<()>::Pending
            })
            .await
        });
        assert_eq!(b.id().slot(), old_id.slot(), "slot must be reused");
        assert_ne!(
            b.id().generation(),
            old_id.generation(),
            "generation must be bumped on free"
        );
        sim.run();
        assert_eq!(polls.get(), 1, "initial spawn polls B once");

        // Deliver the stale wake: addressed to the right slot, wrong
        // generation. B must not run.
        sim.ready.push(old_id);
        sim.run();
        assert_eq!(polls.get(), 1, "stale wake was misdelivered to B");

        // Sanity: a wake with the *current* id does reach B.
        sim.ready.push(b.id());
        sim.run();
        assert_eq!(polls.get(), 2);
    }

    #[test]
    fn yield_now_lets_same_time_tasks_run() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push(1);
            s1.yield_now().await;
            l1.borrow_mut().push(3);
        });
        sim.spawn(async move {
            l2.borrow_mut().push(2);
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }
}
