//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is the single authority for every injected failure in a
//! simulation: transient and sticky disk read errors, RAID member death,
//! mesh message drop/duplication/delay, and node crash windows. It is held
//! by [`crate::Sim`] (like the flight recorder) and consulted by the disk
//! servers, the mesh, and the RAID layer at well-defined points on each
//! request path.
//!
//! Determinism: all probabilistic draws come from one SplitMix64 stream
//! seeded from `derive_seed(sim_seed, "fault-plan")`, and the simulation is
//! single-threaded, so draws are consumed in delivery/service order — equal
//! `(seed, model, plan)` always injects the identical fault sequence. The
//! plan starts **disarmed**: configuration can happen at build time, but no
//! fault fires until [`FaultPlan::arm`] (harnesses arm after populating
//! files so setup I/O never sees an injected error).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// What an injected disk fault does to the request that drew it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// One-shot error; the same request retried later may succeed.
    Transient,
    /// The member is dead (sticky); every request fails until revived.
    Dead,
}

/// The fate of one mesh message, drawn at its source NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshVerdict {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message.
    Drop,
    /// Deliver twice (models a link-level retransmit duplicate).
    Duplicate,
    /// Deliver after an extra delay.
    Delay(SimDuration),
}

/// Cumulative counters of faults actually injected.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient disk read errors injected.
    pub disk_transients: u64,
    /// Requests that hit a dead disk.
    pub disk_dead_hits: u64,
    /// Mesh messages dropped by the plan.
    pub mesh_dropped: u64,
    /// Mesh messages duplicated.
    pub mesh_duplicated: u64,
    /// Mesh messages delayed.
    pub mesh_delayed: u64,
    /// Mesh messages dropped because an endpoint was in a crash window.
    pub node_down_drops: u64,
}

#[derive(Debug)]
struct PlanState {
    armed: bool,
    rng: Rng,
    /// Per-mille probability that any disk read fails transiently.
    disk_error_pm: u32,
    /// Scheduled one-shot transient errors, per disk track index.
    disk_transients: BTreeMap<u16, u32>,
    /// Sticky-dead disks (RAID members).
    dead_disks: BTreeSet<u16>,
    mesh_drop_pm: u32,
    mesh_dup_pm: u32,
    mesh_delay_pm: u32,
    mesh_delay: SimDuration,
    /// Nodes immune to mesh faults and crash windows (e.g. the service
    /// node: shared-pointer ops are not idempotent, so they must never
    /// need a retry).
    protected: BTreeSet<u16>,
    /// Crash windows: node id → half-open `[from, until)` during which the
    /// node neither sends nor receives.
    crash_windows: BTreeMap<u16, (SimTime, SimTime)>,
    stats: FaultStats,
}

impl Default for PlanState {
    fn default() -> Self {
        PlanState {
            armed: false,
            rng: Rng::seed_from_u64(0),
            disk_error_pm: 0,
            disk_transients: BTreeMap::new(),
            dead_disks: BTreeSet::new(),
            mesh_drop_pm: 0,
            mesh_dup_pm: 0,
            mesh_delay_pm: 0,
            mesh_delay: SimDuration::ZERO,
            protected: BTreeSet::new(),
            crash_windows: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }
}

/// Handle to a simulation's fault plan (cloned out of `Sim`). Clones share
/// state.
#[derive(Clone, Default)]
pub struct FaultPlan {
    state: Rc<RefCell<PlanState>>,
}

impl FaultPlan {
    /// A plan whose probabilistic draws come from `seed`.
    pub fn new(seed: u64) -> Self {
        let plan = FaultPlan::default();
        plan.state.borrow_mut().rng = Rng::seed_from_u64(seed);
        plan
    }

    // ---- configuration -------------------------------------------------

    /// Start injecting. Configuration before arming is inert, so setup
    /// I/O (file population) never draws a fault.
    pub fn arm(&self) {
        self.state.borrow_mut().armed = true;
    }

    /// Stop injecting (dead disks stay dead in the table but stop firing).
    pub fn disarm(&self) {
        self.state.borrow_mut().armed = false;
    }

    /// True while faults fire.
    pub fn armed(&self) -> bool {
        self.state.borrow().armed
    }

    /// Every disk read fails transiently with probability `pm`/1000.
    pub fn set_disk_error_rate(&self, pm: u32) {
        assert!(pm <= 1000, "per-mille rate over 1000");
        self.state.borrow_mut().disk_error_pm = pm;
    }

    /// The next `count` reads on disk track `disk` fail transiently.
    pub fn schedule_disk_transients(&self, disk: u16, count: u32) {
        *self
            .state
            .borrow_mut()
            .disk_transients
            .entry(disk)
            .or_insert(0) += count;
    }

    /// Kill disk track `disk`: every request fails until revived.
    pub fn kill_disk(&self, disk: u16) {
        self.state.borrow_mut().dead_disks.insert(disk);
    }

    /// Bring a killed disk back.
    pub fn revive_disk(&self, disk: u16) {
        self.state.borrow_mut().dead_disks.remove(&disk);
    }

    /// Per-mille rates for mesh drop/duplicate/delay, and the extra delay
    /// applied when the delay branch is drawn. The three rates are
    /// mutually exclusive slices of one draw (their sum must be ≤ 1000).
    pub fn set_mesh_faults(&self, drop_pm: u32, dup_pm: u32, delay_pm: u32, delay: SimDuration) {
        assert!(drop_pm + dup_pm + delay_pm <= 1000, "rates exceed 1000‰");
        let mut st = self.state.borrow_mut();
        st.mesh_drop_pm = drop_pm;
        st.mesh_dup_pm = dup_pm;
        st.mesh_delay_pm = delay_pm;
        st.mesh_delay = delay;
    }

    /// Exempt `node` from mesh faults and crash windows. Used for the
    /// service node: shared-pointer operations are not idempotent, so a
    /// retry there could double-advance a file pointer.
    pub fn protect_node(&self, node: u16) {
        self.state.borrow_mut().protected.insert(node);
    }

    /// Crash `node` for `[from, until)`: while armed and inside the
    /// window, every message to or from it is dropped.
    pub fn crash_node(&self, node: u16, from: SimTime, until: SimTime) {
        assert!(from < until, "empty crash window");
        self.state
            .borrow_mut()
            .crash_windows
            .insert(node, (from, until));
    }

    /// Explicitly recover `node` at `now`: its crash window is removed
    /// (not merely aged out), so rejoining is a recorded state change —
    /// the harness emits `FaultNodeRecovered` at this moment — rather
    /// than something inferred from the configured window bound. Returns
    /// how long the node was degraded (window start to `now`), or `None`
    /// when no window was registered.
    pub fn recover_node(&self, node: u16, now: SimTime) -> Option<SimDuration> {
        let (from, _) = self.state.borrow_mut().crash_windows.remove(&node)?;
        Some(if now >= from {
            now - from
        } else {
            SimDuration::ZERO
        })
    }

    // ---- queries (called from the model layers) ------------------------

    /// Consult the plan for one disk *read* on track `disk`. Order of
    /// precedence: dead member, scheduled transients, then the random
    /// error rate. Consumes one RNG draw only when a rate is configured.
    pub fn disk_read_fault(&self, disk: u16) -> Option<DiskFault> {
        let mut st = self.state.borrow_mut();
        if !st.armed {
            return None;
        }
        if st.dead_disks.contains(&disk) {
            st.stats.disk_dead_hits += 1;
            return Some(DiskFault::Dead);
        }
        if let Some(n) = st.disk_transients.get_mut(&disk) {
            if *n > 0 {
                *n -= 1;
                st.stats.disk_transients += 1;
                return Some(DiskFault::Transient);
            }
        }
        if st.disk_error_pm > 0 && st.rng.range_u64(0..1000) < st.disk_error_pm as u64 {
            st.stats.disk_transients += 1;
            return Some(DiskFault::Transient);
        }
        None
    }

    /// Consult the plan for one disk *write*: only dead members fail
    /// writes (transient injection is read-only, like media read errors).
    pub fn disk_write_fault(&self, disk: u16) -> Option<DiskFault> {
        let mut st = self.state.borrow_mut();
        if !st.armed {
            return None;
        }
        if st.dead_disks.contains(&disk) {
            st.stats.disk_dead_hits += 1;
            return Some(DiskFault::Dead);
        }
        None
    }

    /// True while the plan is armed and `disk` is in the dead set. The
    /// RAID layer uses this to route reads through reconstruction.
    pub fn disk_is_dead(&self, disk: u16) -> bool {
        let st = self.state.borrow();
        st.armed && st.dead_disks.contains(&disk)
    }

    /// True while the plan is armed and `node` is inside a crash window.
    pub fn node_down(&self, node: u16, now: SimTime) -> bool {
        let st = self.state.borrow();
        if !st.armed || st.protected.contains(&node) {
            return false;
        }
        st.crash_windows
            .get(&node)
            .is_some_and(|&(from, until)| from <= now && now < until)
    }

    /// Crash window registered for `node`, if any (armed or not); the
    /// harness uses it to emit `FaultNodeDown`/`FaultNodeUp` markers.
    pub fn crash_window(&self, node: u16) -> Option<(SimTime, SimTime)> {
        self.state.borrow().crash_windows.get(&node).copied()
    }

    /// Draw the fate of one mesh message from `src` to `dst` at `now`.
    /// Crash windows dominate (no RNG draw); protected endpoints always
    /// deliver; otherwise one draw splits across drop/dup/delay.
    pub fn mesh_verdict(&self, src: u16, dst: u16, now: SimTime) -> MeshVerdict {
        let mut st = self.state.borrow_mut();
        if !st.armed {
            return MeshVerdict::Deliver;
        }
        let in_window = |st: &PlanState, node: u16| {
            !st.protected.contains(&node)
                && st
                    .crash_windows
                    .get(&node)
                    .is_some_and(|&(from, until)| from <= now && now < until)
        };
        if in_window(&st, src) || in_window(&st, dst) {
            st.stats.node_down_drops += 1;
            st.stats.mesh_dropped += 1;
            return MeshVerdict::Drop;
        }
        if st.protected.contains(&src) || st.protected.contains(&dst) {
            return MeshVerdict::Deliver;
        }
        let budget = st.mesh_drop_pm + st.mesh_dup_pm + st.mesh_delay_pm;
        if budget == 0 {
            return MeshVerdict::Deliver;
        }
        let r = st.rng.range_u64(0..1000) as u32;
        if r < st.mesh_drop_pm {
            st.stats.mesh_dropped += 1;
            MeshVerdict::Drop
        } else if r < st.mesh_drop_pm + st.mesh_dup_pm {
            st.stats.mesh_duplicated += 1;
            MeshVerdict::Duplicate
        } else if r < budget {
            st.stats.mesh_delayed += 1;
            MeshVerdict::Delay(st.mesh_delay)
        } else {
            MeshVerdict::Deliver
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultStats {
        self.state.borrow().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_injects_nothing() {
        let plan = FaultPlan::new(1);
        plan.set_disk_error_rate(1000);
        plan.kill_disk(0);
        plan.set_mesh_faults(1000, 0, 0, SimDuration::ZERO);
        assert_eq!(plan.disk_read_fault(0), None);
        assert_eq!(plan.disk_write_fault(0), None);
        assert!(!plan.disk_is_dead(0));
        assert_eq!(plan.mesh_verdict(0, 1, SimTime::ZERO), MeshVerdict::Deliver);
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn dead_disk_fails_reads_and_writes_until_revived() {
        let plan = FaultPlan::new(1);
        plan.kill_disk(3);
        plan.arm();
        assert_eq!(plan.disk_read_fault(3), Some(DiskFault::Dead));
        assert_eq!(plan.disk_write_fault(3), Some(DiskFault::Dead));
        assert!(plan.disk_is_dead(3));
        assert_eq!(plan.disk_read_fault(2), None);
        plan.revive_disk(3);
        assert_eq!(plan.disk_read_fault(3), None);
        assert_eq!(plan.stats().disk_dead_hits, 2);
    }

    #[test]
    fn scheduled_transients_fire_exactly_n_times() {
        let plan = FaultPlan::new(1);
        plan.schedule_disk_transients(0, 2);
        plan.arm();
        assert_eq!(plan.disk_read_fault(0), Some(DiskFault::Transient));
        assert_eq!(plan.disk_read_fault(0), Some(DiskFault::Transient));
        assert_eq!(plan.disk_read_fault(0), None);
        // Writes never draw transients.
        plan.schedule_disk_transients(0, 1);
        assert_eq!(plan.disk_write_fault(0), None);
        assert_eq!(plan.stats().disk_transients, 2);
    }

    #[test]
    fn error_rate_draws_are_deterministic() {
        let run = |seed| {
            let plan = FaultPlan::new(seed);
            plan.set_disk_error_rate(250);
            plan.arm();
            (0..64)
                .map(|_| plan.disk_read_fault(0).is_some())
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7));
        assert_ne!(a, run(8));
        assert!(a.iter().any(|&f| f), "250‰ must fire in 64 draws");
        assert!(!a.iter().all(|&f| f), "250‰ must also miss");
    }

    #[test]
    fn mesh_verdicts_split_one_draw() {
        let plan = FaultPlan::new(3);
        plan.set_mesh_faults(100, 100, 100, SimDuration::from_millis(5));
        plan.arm();
        let mut seen_drop = false;
        let mut seen_dup = false;
        let mut seen_delay = false;
        for _ in 0..400 {
            match plan.mesh_verdict(0, 1, SimTime::ZERO) {
                MeshVerdict::Drop => seen_drop = true,
                MeshVerdict::Duplicate => seen_dup = true,
                MeshVerdict::Delay(d) => {
                    assert_eq!(d, SimDuration::from_millis(5));
                    seen_delay = true;
                }
                MeshVerdict::Deliver => {}
            }
        }
        assert!(seen_drop && seen_dup && seen_delay);
        let st = plan.stats();
        assert!(st.mesh_dropped > 0 && st.mesh_duplicated > 0 && st.mesh_delayed > 0);
    }

    #[test]
    fn protected_nodes_never_draw_faults() {
        let plan = FaultPlan::new(3);
        plan.set_mesh_faults(1000, 0, 0, SimDuration::ZERO);
        plan.protect_node(9);
        plan.arm();
        for _ in 0..32 {
            assert_eq!(plan.mesh_verdict(0, 9, SimTime::ZERO), MeshVerdict::Deliver);
            assert_eq!(plan.mesh_verdict(9, 4, SimTime::ZERO), MeshVerdict::Deliver);
        }
        assert_eq!(plan.stats().mesh_dropped, 0);
    }

    #[test]
    fn crash_windows_drop_messages_inside_only() {
        let plan = FaultPlan::new(1);
        let from = SimTime::ZERO + SimDuration::from_millis(10);
        let until = SimTime::ZERO + SimDuration::from_millis(20);
        plan.crash_node(5, from, until);
        plan.arm();
        assert!(!plan.node_down(5, SimTime::ZERO));
        assert!(plan.node_down(5, from));
        assert!(!plan.node_down(5, until), "window is half-open");
        assert_eq!(plan.mesh_verdict(5, 0, from), MeshVerdict::Drop);
        assert_eq!(plan.mesh_verdict(0, 5, from), MeshVerdict::Drop);
        assert_eq!(plan.mesh_verdict(0, 5, until), MeshVerdict::Deliver);
        assert_eq!(plan.stats().node_down_drops, 2);
        assert_eq!(plan.crash_window(5), Some((from, until)));
    }

    #[test]
    fn recover_node_closes_the_window_explicitly() {
        let plan = FaultPlan::new(2);
        let from = SimTime::ZERO + SimDuration::from_millis(10);
        let until = SimTime::ZERO + SimDuration::from_millis(20);
        plan.crash_node(5, from, until);
        plan.arm();
        let mid = SimTime::ZERO + SimDuration::from_millis(15);
        assert!(plan.node_down(5, mid));
        assert_eq!(plan.recover_node(5, mid), Some(SimDuration::from_millis(5)));
        assert!(!plan.node_down(5, mid), "recovered node serves again");
        assert_eq!(plan.crash_window(5), None);
        assert_eq!(
            plan.recover_node(5, mid),
            None,
            "second recovery is a no-op"
        );
    }
}
