//! One-shot broadcast signal ("manual-reset event").
//!
//! The ART request-completion path uses this: the asynchronous request
//! thread sets the signal when the transfer finishes; any number of waiters
//! (the user thread in `iowait`, the prefetch hit path) observe it.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::sync::small_ring::SmallRing;

struct SignalState {
    set: bool,
    wakers: SmallRing<Waker, 4>,
}

/// A latch that starts clear and can be set exactly once.
#[derive(Clone)]
pub struct Signal {
    state: Rc<RefCell<SignalState>>,
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl Signal {
    /// Create a clear signal.
    pub fn new() -> Self {
        Signal {
            state: Rc::new(RefCell::new(SignalState {
                set: false,
                wakers: SmallRing::new(),
            })),
        }
    }

    /// Set the signal, waking all current and future waiters. Idempotent.
    pub fn set(&self) {
        let mut st = self.state.borrow_mut();
        if !st.set {
            st.set = true;
            while let Some(w) = st.wakers.pop_front() {
                w.wake();
            }
        }
    }

    /// True once [`Signal::set`] has been called.
    pub fn is_set(&self) -> bool {
        self.state.borrow().set
    }

    /// Wait for the signal to be set (immediate if already set).
    pub fn wait(&self) -> SignalWait {
        SignalWait {
            signal: self.clone(),
        }
    }
}

/// Future returned by [`Signal::wait`].
pub struct SignalWait {
    signal: Signal,
}

impl Future for SignalWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.signal.state.borrow_mut();
        if st.set {
            Poll::Ready(())
        } else {
            st.wakers.push_back(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn wakes_all_waiters() {
        let sim = Sim::new(1);
        let sig = Signal::new();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let sg = sig.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                sg.wait().await;
                s.now().as_millis_round()
            }));
        }
        let s2 = sim.clone();
        let sig2 = sig.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_millis(7)).await;
            sig2.set();
        });
        sim.run();
        for h in handles {
            assert_eq!(h.try_take(), Some(7));
        }
        assert!(sig.is_set());
    }

    #[test]
    fn wait_after_set_is_immediate() {
        let sim = Sim::new(1);
        let sig = Signal::new();
        sig.set();
        sig.set(); // idempotent
        let sg = sig.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            sg.wait().await;
            s.now().as_nanos()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(0));
    }
}
