//! Synchronization primitives for simulated processes.
//!
//! These mirror the OS facilities the Paragon models need — message queues,
//! mutual exclusion with FIFO fairness (disk queues, pointer tokens),
//! barriers (M_SYNC collective calls), and completion signals (ART request
//! completion) — all parked on the virtual clock, never the host clock.

mod barrier;
mod channel;
mod oneshot;
mod semaphore;
mod signal;
mod small_ring;

pub use barrier::{Barrier, BarrierWaitResult};
pub use channel::{channel, Receiver, RecvError, Sender};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender, RecvCancelled};
pub use semaphore::{Semaphore, SemaphoreGuard};
pub use signal::Signal;
