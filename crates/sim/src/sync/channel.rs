//! Unbounded multi-producer single-consumer channel.
//!
//! Message delivery is instantaneous in virtual time; latency belongs to the
//! mesh model, which sleeps before pushing. FIFO order is guaranteed per
//! channel, which is what the Paragon's ordered point-to-point links need.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::sync::small_ring::SmallRing;

struct ChanState<T> {
    /// First 4 messages inline: the per-request reply channels that
    /// dominate channel traffic never touch the heap.
    queue: SmallRing<T, 4>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half; clone freely.
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half; at most one exists per channel.
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Create an unbounded MPSC channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: SmallRing::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            state: state.clone(),
        },
        Receiver { state },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message. Fails only if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.state.borrow_mut();
        if !st.receiver_alive {
            return Err(value);
        }
        st.queue.push_back(value);
        if let Some(w) = st.recv_waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Number of queued, undelivered messages.
    pub fn queued(&self) -> usize {
        self.state.borrow().queue.len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender {
            state: self.state.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake a parked receiver so it can observe disconnection.
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Await the next message; `None` once every sender is dropped and the
    /// queue has drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.state.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.borrow_mut().receiver_alive = false;
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.receiver.state.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        st.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_fifo_order() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u32>();
        let s = sim.clone();
        let consumer = sim.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        sim.spawn(async move {
            for i in 0..5 {
                tx.send(i).unwrap();
                s.sleep(SimDuration::from_micros(1)).await;
            }
        });
        sim.run();
        assert_eq!(consumer.try_take(), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn recv_sees_disconnect() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u32>();
        let h = sim.spawn(async move { rx.recv().await });
        drop(tx);
        sim.run();
        assert_eq!(h.try_take(), Some(None));
    }

    #[test]
    fn send_after_receiver_drop_fails() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn multiple_senders_drain_before_disconnect() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        sim.run();
        assert_eq!(h.try_take(), Some(vec![1, 2]));
    }

    #[test]
    fn recv_parks_until_message_arrives() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u64>();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let v = rx.recv().await.unwrap();
            (v, s.now().as_nanos())
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_millis(5)).await;
            tx.send(99).unwrap();
        });
        sim.run();
        assert_eq!(h.try_take(), Some((99, 5_000_000)));
    }
}
