//! Counting semaphore with strict FIFO grant order.
//!
//! FIFO fairness matters for fidelity: the Paragon's disk queues and the
//! shared-file-pointer token are first-come-first-served, and the paper's
//! "prefetching benefits should be equally distributed amongst the
//! processors" observation depends on no node starving another.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::sync::small_ring::SmallRing;

/// A parked acquirer, identified by its FIFO ticket. Lives *in* the queue
/// ring (no per-waiter allocation); the `Acquire` future holds only the
/// ticket number.
struct Waiter {
    ticket: u64,
    waker: Option<Waker>,
}

struct SemState {
    permits: usize,
    /// Monotone ticket counter; queue order == ticket order.
    next_ticket: u64,
    queue: SmallRing<Waiter, 8>,
    /// Tickets whose permit was handed over by `release` but whose waiter
    /// has not polled (or been cancelled) yet.
    granted: SmallRing<u64, 4>,
    /// High-water mark of queue length, for contention diagnostics.
    max_queue: usize,
}

/// A FIFO counting semaphore. `Semaphore::new(1)` is a fair mutex.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                next_ticket: 0,
                queue: SmallRing::new(),
                granted: SmallRing::new(),
                max_queue: 0,
            })),
        }
    }

    /// Acquire one permit, waiting FIFO behind earlier acquirers.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            ticket: None,
        }
    }

    /// Acquire without waiting, if a permit is free and nobody is queued.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let mut st = self.state.borrow_mut();
        if st.queue.is_empty() && st.permits > 0 {
            st.permits -= 1;
            Some(SemaphoreGuard { sem: self.clone() })
        } else {
            None
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Number of parked waiters.
    pub fn queue_len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// High-water mark of the wait queue since creation.
    pub fn max_queue_len(&self) -> usize {
        self.state.borrow().max_queue
    }

    fn release(&self) {
        let mut st = self.state.borrow_mut();
        if let Some(mut next) = st.queue.pop_front() {
            st.granted.push_back(next.ticket);
            if let Some(waker) = next.waker.take() {
                waker.wake();
            }
        } else {
            st.permits += 1;
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    ticket: Option<u64>,
}

impl Future for Acquire {
    type Output = SemaphoreGuard;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemaphoreGuard> {
        let mut st = self.sem.state.borrow_mut();
        if let Some(t) = self.ticket {
            if st.granted.remove_first(|&g| g == t).is_some() {
                // The permit released to us is now owned by the guard.
                drop(st);
                self.ticket = None;
                return Poll::Ready(SemaphoreGuard {
                    sem: self.sem.clone(),
                });
            }
            let w = st
                .queue
                .find_mut(|q| q.ticket == t)
                .expect("parked waiter is queued or granted");
            w.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        if st.queue.is_empty() && st.permits > 0 {
            st.permits -= 1;
            return Poll::Ready(SemaphoreGuard {
                sem: self.sem.clone(),
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(Waiter {
            ticket,
            waker: Some(cx.waker().clone()),
        });
        let qlen = st.queue.len();
        st.max_queue = st.max_queue.max(qlen);
        drop(st);
        self.ticket = Some(ticket);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(t) = self.ticket.take() {
            let mut st = self.sem.state.borrow_mut();
            if st.granted.remove_first(|&g| g == t).is_some() {
                // We were granted a permit but never returned the guard
                // (e.g. cancelled by a timeout). Pass the permit on.
                drop(st);
                self.sem.release();
            } else {
                // Still queued: remove ourselves so we never get granted.
                st.queue.remove_first(|q| q.ticket == t);
            }
        }
    }
}

/// Releases its permit on drop.
pub struct SemaphoreGuard {
    sem: Semaphore,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn mutex_serializes_and_is_fifo() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0..4u32 {
            let sim2 = sim.clone();
            let sem2 = sem.clone();
            let log2 = log.clone();
            let s = sim.clone();
            sim.spawn(async move {
                // Stagger arrivals so the queue order is 0,1,2,3.
                s.sleep(SimDuration::from_micros(id as u64)).await;
                let _g = sem2.acquire().await;
                sim2.sleep(SimDuration::from_millis(10)).await;
                log2.borrow_mut().push(id);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn counting_semaphore_admits_n() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let peak: Rc<RefCell<(u32, u32)>> = Rc::new(RefCell::new((0, 0))); // (current, max)
        for _ in 0..6 {
            let sem2 = sem.clone();
            let peak2 = peak.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let _g = sem2.acquire().await;
                {
                    let mut p = peak2.borrow_mut();
                    p.0 += 1;
                    p.1 = p.1.max(p.0);
                }
                s.sleep(SimDuration::from_millis(1)).await;
                peak2.borrow_mut().0 -= 1;
            });
        }
        sim.run();
        assert_eq!(peak.borrow().1, 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let g = sem.try_acquire().unwrap();
        assert!(sem.try_acquire().is_none());
        // Park one waiter.
        let sem2 = sem.clone();
        let h = sim.spawn(async move {
            let _g = sem2.acquire().await;
            7u32
        });
        // Waiter must get the permit before any try_acquire that comes later.
        drop(g);
        sim.run();
        assert_eq!(h.try_take(), Some(7));
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn cancelled_waiter_leaves_queue() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let g = sem.try_acquire().unwrap();
        let sem2 = sem.clone();
        let s = sim.clone();
        let cancelled = sim.spawn(async move {
            s.timeout(SimDuration::from_millis(1), sem2.acquire())
                .await
                .is_none()
        });
        let sim2 = sim.clone();
        let sem3 = sem.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(5)).await;
            drop(g);
            // The cancelled waiter must not swallow the permit.
            let _g2 = sem3.acquire().await;
        });
        let report = sim.run();
        assert_eq!(report.unfinished_tasks, 0);
        assert_eq!(cancelled.try_take(), Some(true));
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn tracks_queue_high_water_mark() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        for _ in 0..5 {
            let sem2 = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let _g = sem2.acquire().await;
                s.sleep(SimDuration::from_millis(1)).await;
            });
        }
        sim.run();
        assert_eq!(sem.max_queue_len(), 4);
    }
}
