//! A FIFO ring that stores its first `N` elements inline.
//!
//! The sync primitives' waiter lists and message queues are almost always
//! short (a parked receiver, a handful of semaphore waiters), but the seed
//! implementation kept each in a heap-allocated `VecDeque` — one allocation
//! per channel/semaphore plus growth churn on the hot path. `SmallRing`
//! keeps up to `N` elements in the structure itself and spills to a
//! `VecDeque` only when the queue genuinely grows (deep disk queues on the
//! 512-node scaling shape), preserving strict FIFO order throughout.

use std::collections::VecDeque;

pub(crate) struct SmallRing<T, const N: usize> {
    inline: [Option<T>; N],
    /// Index of the front element within `inline`.
    head: usize,
    inline_len: usize,
    /// Overflow, logically ordered *after* every inline element. Invariant:
    /// non-empty only while the inline ring is full.
    spill: VecDeque<T>,
}

impl<T, const N: usize> Default for SmallRing<T, N> {
    fn default() -> Self {
        SmallRing {
            inline: std::array::from_fn(|_| None),
            head: 0,
            inline_len: 0,
            spill: VecDeque::new(),
        }
    }
}

impl<T, const N: usize> SmallRing<T, N> {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    pub(crate) fn push_back(&mut self, value: T) {
        if self.inline_len < N {
            debug_assert!(self.spill.is_empty(), "spill while inline has room");
            let tail = (self.head + self.inline_len) % N;
            self.inline[tail] = Some(value);
            self.inline_len += 1;
        } else {
            self.spill.push_back(value);
        }
    }

    pub(crate) fn pop_front(&mut self) -> Option<T> {
        if self.inline_len == 0 {
            debug_assert!(self.spill.is_empty(), "spill while inline is empty");
            return None;
        }
        let value = self.inline[self.head].take().expect("front slot occupied");
        self.head = (self.head + 1) % N;
        self.inline_len -= 1;
        // Refill from the spill so the inline ring stays the queue's front.
        if let Some(s) = self.spill.pop_front() {
            let tail = (self.head + self.inline_len) % N;
            self.inline[tail] = Some(s);
            self.inline_len += 1;
        }
        Some(value)
    }

    /// Mutable access to the first element matching `pred`, in FIFO order.
    pub(crate) fn find_mut(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<&mut T> {
        for i in 0..self.inline_len {
            let idx = (self.head + i) % N;
            if pred(self.inline[idx].as_ref().expect("inline slot occupied")) {
                return self.inline[idx].as_mut();
            }
        }
        self.spill.iter_mut().find(|t| pred(t))
    }

    /// Remove and return the first element matching `pred`, preserving the
    /// relative order of everything else. O(len), allocation-free.
    pub(crate) fn remove_first(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let n = self.len();
        let mut found = None;
        for _ in 0..n {
            let v = self.pop_front().expect("length was counted");
            if found.is_none() && pred(&v) {
                found = Some(v);
            } else {
                self.push_back(v);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_across_inline_and_spill() {
        let mut r: SmallRing<u32, 4> = SmallRing::new();
        for i in 0..10 {
            r.push_back(i);
        }
        assert_eq!(r.len(), 10);
        let mut out = Vec::new();
        while let Some(v) = r.pop_front() {
            out.push(v);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(r.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut r: SmallRing<u32, 2> = SmallRing::new();
        let mut expect = std::collections::VecDeque::new();
        for i in 0..50u32 {
            r.push_back(i);
            expect.push_back(i);
            if i % 3 == 0 {
                assert_eq!(r.pop_front(), expect.pop_front());
            }
        }
        while let Some(v) = r.pop_front() {
            assert_eq!(Some(v), expect.pop_front());
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn remove_first_preserves_order() {
        let mut r: SmallRing<u32, 4> = SmallRing::new();
        for i in 0..8 {
            r.push_back(i);
        }
        assert_eq!(r.remove_first(|&v| v == 5), Some(5));
        assert_eq!(r.remove_first(|&v| v == 0), Some(0));
        assert_eq!(r.remove_first(|&v| v == 99), None);
        let mut out = Vec::new();
        while let Some(v) = r.pop_front() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn find_mut_hits_inline_and_spill() {
        let mut r: SmallRing<(u32, u32), 2> = SmallRing::new();
        for i in 0..6 {
            r.push_back((i, 0));
        }
        r.find_mut(|&(k, _)| k == 1).expect("inline element").1 = 11;
        r.find_mut(|&(k, _)| k == 5).expect("spilled element").1 = 55;
        assert!(r.find_mut(|&(k, _)| k == 9).is_none());
        let mut out = Vec::new();
        while let Some(v) = r.pop_front() {
            out.push(v);
        }
        assert_eq!(out, vec![(0, 0), (1, 11), (2, 0), (3, 0), (4, 0), (5, 55)]);
    }
}
