//! One-shot value channel, used for RPC replies (e.g. a PFS server
//! answering one read request).

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ShotState<T> {
    value: Option<T>,
    sender_alive: bool,
    waker: Option<Waker>,
}

/// Sending half; consumed by [`OneshotSender::send`].
pub struct OneshotSender<T> {
    state: Rc<RefCell<ShotState<T>>>,
}

/// Receiving half; await it for the value.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<ShotState<T>>>,
}

/// The sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvCancelled;

/// Create a one-shot channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(ShotState {
        value: None,
        sender_alive: true,
        waker: None,
    }));
    (
        OneshotSender {
            state: state.clone(),
        },
        OneshotReceiver { state },
    )
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut st = self.state.borrow_mut();
        st.value = Some(value);
        if let Some(w) = st.waker.take() {
            w.wake();
        }
        // Drop runs after this; sender_alive flips there.
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.sender_alive = false;
        if let Some(w) = st.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, RecvCancelled>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !st.sender_alive {
            return Poll::Ready(Err(RecvCancelled));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn value_arrives() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        let h = sim.spawn(rx);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            tx.send(5);
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Ok(5)));
    }

    #[test]
    fn dropped_sender_cancels() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        let h = sim.spawn(rx);
        drop(tx);
        sim.run();
        assert_eq!(h.try_take(), Some(Err(RecvCancelled)));
    }

    #[test]
    fn send_before_recv_is_fine() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        tx.send(11);
        let h = sim.spawn(rx);
        sim.run();
        assert_eq!(h.try_take(), Some(Ok(11)));
    }
}
