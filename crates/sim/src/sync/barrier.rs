//! Reusable barrier, used by the M_SYNC I/O mode (every node must arrive at
//! the collective call before any request is serviced) and by workload
//! drivers that align phases across compute nodes.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::sync::small_ring::SmallRing;

struct BarrierState {
    n: usize,
    arrived: usize,
    generation: u64,
    wakers: SmallRing<Waker, 8>,
}

/// A cyclic barrier for `n` parties.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

/// Outcome of a barrier wait; exactly one waiter per generation is leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    /// True for the party whose arrival released the barrier.
    pub is_leader: bool,
}

impl Barrier {
    /// Barrier for `n` parties; `n == 0` is treated as 1.
    pub fn new(n: usize) -> Self {
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                n: n.max(1),
                arrived: 0,
                generation: 0,
                wakers: SmallRing::new(),
            })),
        }
    }

    /// Wait until all `n` parties have called `wait` in this generation.
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            generation: None,
        }
    }

    /// Parties currently blocked at the barrier.
    pub fn waiting(&self) -> usize {
        self.state.borrow().arrived
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    generation: Option<u64>,
}

impl Future for BarrierWait {
    type Output = BarrierWaitResult;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<BarrierWaitResult> {
        let mut st = self.barrier.state.borrow_mut();
        match self.generation {
            None => {
                st.arrived += 1;
                if st.arrived == st.n {
                    st.arrived = 0;
                    st.generation += 1;
                    while let Some(w) = st.wakers.pop_front() {
                        w.wake();
                    }
                    Poll::Ready(BarrierWaitResult { is_leader: true })
                } else {
                    let gen = st.generation;
                    st.wakers.push_back(cx.waker().clone());
                    drop(st);
                    self.generation = Some(gen);
                    Poll::Pending
                }
            }
            Some(gen) => {
                if st.generation != gen {
                    Poll::Ready(BarrierWaitResult { is_leader: false })
                } else {
                    st.wakers.push_back(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn releases_all_when_full() {
        let sim = Sim::new(1);
        let barrier = Barrier::new(3);
        let release_times: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let b = barrier.clone();
            let s = sim.clone();
            let rt = release_times.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(i * 10)).await;
                b.wait().await;
                rt.borrow_mut().push(s.now().as_millis_round());
            });
        }
        sim.run();
        // All released at the last arrival (t = 20 ms).
        assert_eq!(*release_times.borrow(), vec![20, 20, 20]);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let sim = Sim::new(1);
        let barrier = Barrier::new(4);
        let leaders: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
        for _ in 0..4 {
            let b = barrier.clone();
            let l = leaders.clone();
            sim.spawn(async move {
                for _ in 0..3 {
                    if b.wait().await.is_leader {
                        *l.borrow_mut() += 1;
                    }
                }
            });
        }
        let report = sim.run();
        assert_eq!(report.unfinished_tasks, 0);
        assert_eq!(*leaders.borrow(), 3); // one leader per generation
    }

    #[test]
    fn reusable_across_generations() {
        let sim = Sim::new(1);
        let barrier = Barrier::new(2);
        let ticks: Rc<RefCell<Vec<(u32, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0..2u32 {
            let b = barrier.clone();
            let t = ticks.clone();
            let s = sim.clone();
            sim.spawn(async move {
                for round in 0..5u32 {
                    s.sleep(SimDuration::from_micros((id as u64 + 1) * 3)).await;
                    b.wait().await;
                    t.borrow_mut().push((round, id));
                }
            });
        }
        sim.run();
        // Rounds must be completed in lockstep: round r of both tasks before
        // round r+1 of either.
        let rounds: Vec<u32> = ticks.borrow().iter().map(|&(r, _)| r).collect();
        assert_eq!(rounds, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
    }
}
