//! In-repo pseudo-random number generator.
//!
//! A SplitMix64 stream: tiny, fast, statistically fine for timing jitter
//! and workload shuffling, and — unlike an external crate — guaranteed to
//! build offline and to produce the same stream on every toolchain. All
//! randomness in the simulation flows through [`crate::Sim::rng`], which
//! derives one of these per `(seed, label)` pair, so traces stay
//! reproducible bit-for-bit.

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed a new stream. Equal seeds give equal streams, forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): one addition, three
        // xor-shift-multiply rounds. Passes BigCrush when used as here.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)`, 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the half-open range `lo..hi` (panics if empty).
    /// Uses the widening-multiply reduction, so no modulo bias to speak of.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform float in `lo..hi`.
    pub fn range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_f64() * (range.end - range.start)
    }

    /// True with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Split off an independent child stream (for spawning sub-generators
    /// without sharing state).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.range_u64(10..20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        // A span of 4 must hit every value in a reasonable sample.
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.range_usize(0..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = a.fork();
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn known_answer_pins_the_algorithm() {
        // SplitMix64 reference values for seed 1234567 (from the public
        // reference implementation); pins the stream across refactors.
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }
}
