//! The event queue at the heart of the simulation.
//!
//! Every future that needs to wait for virtual time registers a [`Waker`]
//! at a deadline. The kernel pops entries in `(time, seq)` order — `seq` is
//! a monotone counter, so simultaneous events fire in registration order and
//! the whole simulation is deterministic. Storage is a [`CalendarQueue`],
//! which pops in exactly the order a binary heap keyed on `(time, seq)`
//! would, without the O(log n) sift per event.

use std::task::Waker;

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

/// Event queue + virtual clock. Owned by the executor behind a `RefCell`.
pub(crate) struct Kernel {
    pub(crate) now: SimTime,
    seq: u64,
    queue: CalendarQueue<Waker>,
    pub(crate) events_processed: u64,
    /// FNV-1a hash folded over every `(time, seq)` fired; lets tests assert
    /// that two runs with the same seed took the identical event path.
    pub(crate) trace_hash: u64,
}

impl Kernel {
    pub(crate) fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            events_processed: 0,
            trace_hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Register `waker` to fire at `deadline` (clamped to not be in the past).
    pub(crate) fn schedule_wake(&mut self, deadline: SimTime, waker: Waker) {
        let time = deadline.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, waker);
    }

    pub(crate) fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek().map(|(t, _)| t)
    }

    /// Calendar-queue resize churn (see [`CalendarQueue::rebuilds`]).
    pub(crate) fn calendar_rebuilds(&self) -> u64 {
        self.queue.rebuilds()
    }

    /// Pop the earliest entry, advance the clock, and return its waker.
    pub(crate) fn fire_next(&mut self) -> Option<Waker> {
        let (time, seq, waker) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.events_processed += 1;
        self.fold_trace(time.as_nanos());
        self.fold_trace(seq);
        Some(waker)
    }

    fn fold_trace(&mut self, v: u64) {
        // FNV-1a over the 8 bytes of v.
        let mut h = self.trace_hash;
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.trace_hash = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::sync::Arc;
    use std::task::Wake;

    struct CountWaker(AtomicUsize);
    impl Wake for CountWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, AtomicOrdering::SeqCst);
        }
    }

    fn waker() -> (Waker, Arc<CountWaker>) {
        let w = Arc::new(CountWaker(AtomicUsize::new(0)));
        (Waker::from(w.clone()), w)
    }

    #[test]
    fn fires_in_time_then_seq_order() {
        let mut k = Kernel::new();
        let (w, _c) = waker();
        k.schedule_wake(SimTime::from_nanos(20), w.clone());
        k.schedule_wake(SimTime::from_nanos(10), w.clone());
        k.schedule_wake(SimTime::from_nanos(10), w);
        // First fire: earliest time.
        k.fire_next().unwrap();
        assert_eq!(k.now, SimTime::from_nanos(10));
        k.fire_next().unwrap();
        assert_eq!(k.now, SimTime::from_nanos(10));
        k.fire_next().unwrap();
        assert_eq!(k.now, SimTime::from_nanos(20));
        assert!(k.fire_next().is_none());
        assert_eq!(k.events_processed, 3);
    }

    #[test]
    fn past_deadlines_are_clamped_to_now() {
        let mut k = Kernel::new();
        let (w, _c) = waker();
        k.schedule_wake(SimTime::from_nanos(100), w.clone());
        k.fire_next().unwrap();
        assert_eq!(k.now, SimTime::from_nanos(100));
        // Deadline in the past must not move the clock backwards.
        k.schedule_wake(SimTime::from_nanos(5), w);
        k.fire_next().unwrap();
        assert_eq!(k.now, SimTime::from_nanos(100));
    }

    #[test]
    fn trace_hash_distinguishes_orders() {
        let (w, _c) = waker();
        let mut a = Kernel::new();
        a.schedule_wake(SimTime::from_nanos(1), w.clone());
        a.schedule_wake(SimTime::from_nanos(2), w.clone());
        while a.fire_next().is_some() {}

        let mut b = Kernel::new();
        b.schedule_wake(SimTime::from_nanos(2), w.clone());
        b.schedule_wake(SimTime::from_nanos(1), w);
        while b.fire_next().is_some() {}

        // Same events, different registration order: seq numbers differ, so
        // the traces differ. (Determinism tests compare equal-seed runs.)
        assert_ne!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn clamped_same_instant_wakes_fire_in_registration_order() {
        // Many wakes land at the already-reached instant `now`: they must
        // drain FIFO, exactly as the binary-heap scheduler did.
        let mut k = Kernel::new();
        let (w, _c) = waker();
        k.schedule_wake(SimTime::from_nanos(1_000), w.clone());
        k.fire_next().unwrap();
        let mut hashes = Vec::new();
        for _ in 0..50 {
            k.schedule_wake(SimTime::ZERO, w.clone());
        }
        while k.fire_next().is_some() {
            hashes.push(k.trace_hash);
            assert_eq!(k.now, SimTime::from_nanos(1_000));
        }
        assert_eq!(k.events_processed, 51);
        // All 50 folds must be distinct (distinct seq) — FIFO covered by
        // the seq fold order being reproducible.
        hashes.dedup();
        assert_eq!(hashes.len(), 50);
    }
}
