//! Virtual time for the discrete-event simulation.
//!
//! Simulated time is a monotone 64-bit nanosecond counter starting at zero.
//! All service-time arithmetic in the machine models is done in
//! [`SimDuration`]; the kernel advances [`SimTime`] only when the event heap
//! says so, never from the host clock.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero instead of panicking.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Milliseconds since start, rounded to nearest whole millisecond.
    pub fn as_millis_round(self) -> u64 {
        (self.0 + NANOS_PER_MILLI / 2) / NANOS_PER_MILLI
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics on negative or non-finite input: a model that computes a
    /// negative service time is a bug we want to see immediately.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration::from_secs_f64: invalid duration {s}"
        );
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration needed to move `bytes` at `bytes_per_sec`, rounded up to a
    /// whole nanosecond. Zero bandwidth panics (a model bug).
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "SimDuration::for_bytes: non-positive bandwidth"
        );
        SimDuration((bytes as f64 / bytes_per_sec * NANOS_PER_SEC as f64).ceil() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow: subtracted a longer duration"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MICRO {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_MILLI {
            write!(f, "{:.2}us", self.0 as f64 / NANOS_PER_MICRO as f64)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.0 as f64 / NANOS_PER_MILLI as f64)
        } else {
            write!(f, "{:.4}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_panics_on_negative_span() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert!(std::panic::catch_unwind(|| a.since(b)).is_err());
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(2_000), SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 3 bytes/sec needs ceil(1/3 s) of nanoseconds.
        let d = SimDuration::for_bytes(1, 3.0);
        assert_eq!(d.as_nanos(), 333_333_334);
        // Exact division stays exact.
        let d = SimDuration::for_bytes(1_000_000, 1_000_000.0);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rejects_negative() {
        assert!(std::panic::catch_unwind(|| SimDuration::from_secs_f64(-1.0)).is_err());
        assert!(std::panic::catch_unwind(|| SimDuration::from_secs_f64(f64::NAN)).is_err());
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.max(d * 2), d * 2);
        assert_eq!(d.min(d * 2), d);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.0000s");
    }
}
