//! Property tests for the simulation kernel: determinism, FIFO fairness,
//! and monotone time under arbitrary task structures.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use paragon_sim::{sync::Semaphore, RunReport, Sim, SimDuration};

/// A little random program: `n` tasks, each doing `k` sleeps of pseudo-random
/// length, contending on one semaphore of capacity `cap`.
fn run_model(seed: u64, tasks: u8, steps: u8, cap: u8) -> (RunReport, Vec<(u8, u64)>) {
    let sim = Sim::new(seed);
    let sem = Semaphore::new(cap.max(1) as usize);
    let log: Rc<RefCell<Vec<(u8, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    for t in 0..tasks {
        let s = sim.clone();
        let sem = sem.clone();
        let log = log.clone();
        sim.spawn(async move {
            for i in 0..steps {
                // Deterministic pseudo-random-ish delays from (t, i).
                let d = SimDuration::from_micros(((t as u64 + 1) * 97 + i as u64 * 31) % 211 + 1);
                s.sleep(d).await;
                let _g = sem.acquire().await;
                s.sleep(SimDuration::from_micros(13)).await;
                log.borrow_mut().push((t, s.now().as_nanos()));
            }
        });
    }
    let report = sim.run();
    let l = log.borrow().clone();
    (report, l)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical (seed, shape) must give identical traces and logs.
    #[test]
    fn equal_seed_equal_world(seed in any::<u64>(), tasks in 1u8..8, steps in 1u8..6, cap in 1u8..4) {
        let (ra, la) = run_model(seed, tasks, steps, cap);
        let (rb, lb) = run_model(seed, tasks, steps, cap);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(la, lb);
        prop_assert_eq!(run_model(seed, tasks, steps, cap).0.unfinished_tasks, 0);
    }

    /// Observed completion times never run backwards.
    #[test]
    fn time_is_monotone(seed in any::<u64>(), tasks in 1u8..8, steps in 1u8..6) {
        let (_r, log) = run_model(seed, tasks, steps, 2);
        let times: Vec<u64> = log.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        prop_assert_eq!(times, sorted);
    }

    /// With a capacity-1 semaphore and a fixed hold time, holds never overlap:
    /// consecutive completion times are at least the hold time apart.
    #[test]
    fn mutex_holds_never_overlap(tasks in 2u8..8) {
        let sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for t in 0..tasks {
            let s = sim.clone();
            let sem = sem.clone();
            let log = log.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(t as u64)).await;
                let _g = sem.acquire().await;
                s.sleep(SimDuration::from_millis(5)).await;
                log.borrow_mut().push(s.now().as_nanos());
            });
        }
        sim.run();
        let log = log.borrow();
        for pair in log.windows(2) {
            prop_assert!(pair[1] - pair[0] >= 5_000_000);
        }
    }
}

#[test]
fn rng_streams_are_stable_across_runs() {
    use rand::Rng;
    let a: Vec<u32> = {
        let sim = Sim::new(9);
        let mut rng = sim.rng("disk.seek");
        (0..8).map(|_| rng.gen()).collect()
    };
    let b: Vec<u32> = {
        let sim = Sim::new(9);
        let mut rng = sim.rng("disk.seek");
        (0..8).map(|_| rng.gen()).collect()
    };
    assert_eq!(a, b);
}
