//! Randomized tests for the simulation kernel: determinism, FIFO
//! fairness, and monotone time under arbitrary task structures. Cases
//! are driven by the in-repo [`Rng`] so the suite is hermetic; the
//! `heavy-tests` feature multiplies the case count for CI soak.

use std::cell::RefCell;
use std::rc::Rc;

use paragon_sim::{ev, sync::Semaphore, EventKind, Rng, RunReport, Sim, SimDuration, Track};

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

/// A little random program: `n` tasks, each doing `k` sleeps of pseudo-random
/// length, contending on one semaphore of capacity `cap`.
fn run_model(seed: u64, tasks: u8, steps: u8, cap: u8) -> (RunReport, Vec<(u8, u64)>) {
    let sim = Sim::new(seed);
    let sem = Semaphore::new(cap.max(1) as usize);
    let log: Rc<RefCell<Vec<(u8, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    for t in 0..tasks {
        let s = sim.clone();
        let sem = sem.clone();
        let log = log.clone();
        sim.spawn(async move {
            for i in 0..steps {
                // Deterministic pseudo-random-ish delays from (t, i).
                let d = SimDuration::from_micros(((t as u64 + 1) * 97 + i as u64 * 31) % 211 + 1);
                s.sleep(d).await;
                let _g = sem.acquire().await;
                s.sleep(SimDuration::from_micros(13)).await;
                log.borrow_mut().push((t, s.now().as_nanos()));
            }
        });
    }
    let report = sim.run();
    let l = log.borrow().clone();
    (report, l)
}

/// Identical (seed, shape) must give identical traces and logs.
#[test]
fn equal_seed_equal_world() {
    let mut rng = Rng::seed_from_u64(0x5eed);
    for _ in 0..cases(64, 512) {
        let seed = rng.next_u64();
        let tasks = rng.range_u64(1..8) as u8;
        let steps = rng.range_u64(1..6) as u8;
        let cap = rng.range_u64(1..4) as u8;
        let (ra, la) = run_model(seed, tasks, steps, cap);
        let (rb, lb) = run_model(seed, tasks, steps, cap);
        assert_eq!(ra, rb);
        assert_eq!(la, lb);
        assert_eq!(run_model(seed, tasks, steps, cap).0.unfinished_tasks, 0);
    }
}

/// Observed completion times never run backwards.
#[test]
fn time_is_monotone() {
    let mut rng = Rng::seed_from_u64(0x7133);
    for _ in 0..cases(64, 512) {
        let seed = rng.next_u64();
        let tasks = rng.range_u64(1..8) as u8;
        let steps = rng.range_u64(1..6) as u8;
        let (_r, log) = run_model(seed, tasks, steps, 2);
        let times: Vec<u64> = log.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }
}

/// With a capacity-1 semaphore and a fixed hold time, holds never overlap:
/// consecutive completion times are at least the hold time apart.
#[test]
fn mutex_holds_never_overlap() {
    for tasks in 2u8..8 {
        let sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for t in 0..tasks {
            let s = sim.clone();
            let sem = sem.clone();
            let log = log.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(t as u64)).await;
                let _g = sem.acquire().await;
                s.sleep(SimDuration::from_millis(5)).await;
                log.borrow_mut().push(s.now().as_nanos());
            });
        }
        sim.run();
        let log = log.borrow();
        for pair in log.windows(2) {
            assert!(pair[1] - pair[0] >= 5_000_000);
        }
    }
}

#[test]
fn rng_streams_are_stable_across_runs() {
    let a: Vec<u32> = {
        let sim = Sim::new(9);
        let mut rng = sim.rng("disk.seek");
        (0..8).map(|_| rng.next_u32()).collect()
    };
    let b: Vec<u32> = {
        let sim = Sim::new(9);
        let mut rng = sim.rng("disk.seek");
        (0..8).map(|_| rng.next_u32()).collect()
    };
    assert_eq!(a, b);
}

/// Two armed runs of the same seeded program record byte-identical
/// flight-recorder traces (equal FNV hashes), and a disarmed run of the
/// same program records nothing yet schedules identically.
#[test]
fn same_seed_same_trace_hash() {
    fn traced_run(seed: u64, arm: bool) -> (u64, usize, u64) {
        let sim = Sim::new(seed);
        if arm {
            sim.tracer().arm(4096);
        }
        let mut rng = sim.rng("trace-test");
        for t in 0..4u16 {
            let s = sim.clone();
            let jitter = rng.range_u64(1..50);
            sim.spawn(async move {
                for i in 0..3u64 {
                    let req = s.mint_req();
                    s.emit(|| ev(Track::Cn(t), EventKind::ReadStart, req, i * 64, 64));
                    s.sleep(SimDuration::from_micros(jitter + i)).await;
                    s.emit(|| ev(Track::Cn(t), EventKind::ReadDone, req, i * 64, 64));
                }
            });
        }
        let total = sim.run().trace_hash;
        (sim.tracer().hash(), sim.tracer().len(), total)
    }
    let (ha, na, ea) = traced_run(77, true);
    let (hb, nb, eb) = traced_run(77, true);
    assert_eq!(ha, hb, "same seed must give identical trace hashes");
    assert_eq!(na, nb);
    assert_eq!(ea, eb);
    assert_eq!(na, 24, "4 tasks x 3 reads x start+done");
    // A different seed reorders the interleaving and changes the hash.
    let (hc, nc, _) = traced_run(78, true);
    assert_eq!(nc, na);
    assert_ne!(ha, hc);
    // Disarmed: no events, but the virtual schedule is unchanged.
    let (hd, nd, ed) = traced_run(77, false);
    assert_eq!(nd, 0);
    assert_ne!(hd, ha);
    assert_eq!(ed, ea, "arming must not perturb the simulation");
}
