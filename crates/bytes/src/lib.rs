//! Minimal in-repo `Bytes`/`BytesMut`.
//!
//! The workspace needs exactly two things from a byte-buffer type:
//! cheap O(1) clones/slices of immutable payloads (so a 1 MB read reply
//! can fan through the mesh, cache, and prefetch list without copies),
//! and a mutable staging buffer that freezes into one. The crates.io
//! `bytes` crate does this with atomics and a vtable; here an
//! `Arc<[u8]>` plus a range is enough — and keeping it in-repo makes the
//! build hermetic (tier-1 verify needs no registry access). The backing
//! pointer is atomic (`Arc`, not `Rc`) so a payload can cross a shard
//! boundary in the parallel kernel: each sharded world runs on its own
//! host thread, and a cross-shard mesh frame carries its `Bytes` with
//! it. Clones are still cheap (one atomic increment) and immutable
//! content needs no further synchronization. The API is the subset the
//! workspace uses, name-compatible with the real crate.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice. (Copies once; the simulator only uses this
    /// for tiny test payloads, so sharing the allocation is not worth a
    /// second representation.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Copy from any slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Wrap an existing shared allocation without copying. The whole
    /// buffer is visible; narrow with [`Bytes::slice`]. This is the
    /// zero-copy bridge for owners that keep data in `Arc<[u8]>` pages
    /// (the sparse disk store) and want to hand out views of them.
    pub fn from_shared(data: Arc<[u8]>) -> Bytes {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// O(1) sub-slice sharing the same allocation. Panics if the range
    /// is out of bounds, like slicing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A mutable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Pre-allocate capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// A zero-filled buffer of `len` bytes (scatter-gather target).
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut { data: vec![0; len] }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grow or shrink to `len`, filling new bytes with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.data.resize(len, fill);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_no_copies() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        // Sub-slicing a slice stays relative to the slice.
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s.slice(..0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn from_shared_does_not_copy() {
        let page: Arc<[u8]> = Arc::from(vec![1u8, 2, 3, 4]);
        let b = Bytes::from_shared(page.clone());
        // The Bytes holds the same allocation, not a copy.
        assert_eq!(Arc::strong_count(&page), 2);
        let s = b.slice(1..3);
        assert_eq!(Arc::strong_count(&page), 3);
        assert_eq!(&s[..], &[2, 3]);
        drop((b, s));
        assert_eq!(Arc::strong_count(&page), 1);
    }

    #[test]
    fn bytes_crosses_threads() {
        // The parallel kernel ships read replies across shard worlds:
        // a Bytes (and anything holding one) must be Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Bytes>();
    }

    #[test]
    fn freeze_roundtrip_and_eq_forms() {
        let mut m = BytesMut::zeroed(4);
        m[1] = 9;
        m[2..4].copy_from_slice(&[7, 8]);
        let b = m.freeze();
        assert_eq!(b, vec![0u8, 9, 7, 8]);
        assert_eq!(vec![0u8, 9, 7, 8], b);
        assert_eq!(b, [0u8, 9, 7, 8][..]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }

    #[test]
    fn bytes_mut_grows() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1, 2]);
        m.resize(4, 7);
        assert_eq!(&m[..], &[1, 2, 7, 7]);
        m.resize(1, 0);
        assert_eq!(&m[..], &[1]);
    }
}
