//! # paragon-disk — disk and RAID models
//!
//! Simulated storage for the Paragon I/O nodes: a first-order disk timing
//! model (controller overhead + seek/rotation + media transfer, with a
//! sequential window standing in for the track buffer), FIFO or C-SCAN
//! request scheduling, and a RAID-3-style array striping a logical device
//! over synchronized members.
//!
//! Every device carries *real bytes* in a sparse in-memory store, so the
//! layers above (UFS, PFS, the prefetcher) can be tested for data integrity
//! as well as timing.

// Robustness: an injected fault must surface as an `Err`, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod disk;
mod params;
mod raid;
mod store;

pub use disk::{Disk, DiskError, DiskOp, DiskStats};
pub use params::{DiskParams, SchedPolicy};
pub use raid::{RaidArray, RaidStats, StripeMap, StripePiece};
pub use store::{BlockStore, STORE_PAGE};
