//! Sparse in-memory byte store backing a simulated disk.
//!
//! The simulation carries *real data* end to end so that integration tests
//! can assert byte-for-byte integrity through striping, caching, and
//! prefetching. Unwritten regions read back as zeros, like a fresh disk.
//!
//! Pages are reference-counted (`Arc<[u8]>`) so a read that falls inside a
//! single page hands back a zero-copy view instead of allocating and
//! copying a fresh buffer — the dominant cost of the data path once the
//! scheduler is out of the way. Writes copy-on-write: a page still
//! referenced by an outstanding read view is cloned before mutation, so
//! previously returned `Bytes` never change underneath their holders.

use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;

/// Internal page size of the sparse store (independent of any file-system
/// block size above it). Sized to the machine's 64 KB transfer unit so the
/// common stripe-unit-aligned read is served by one shared page.
pub const STORE_PAGE: u64 = 64 * 1024;

/// A sparse, page-granular byte store addressed by absolute disk offset.
#[derive(Default)]
pub struct BlockStore {
    pages: BTreeMap<u64, Arc<[u8]>>,
    /// Shared all-zero page backing single-page reads of holes.
    zero: OnceCell<Arc<[u8]>>,
    /// Total bytes ever written (for capacity accounting in tests).
    bytes_written: u64,
}

impl BlockStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn zero_page(&self) -> Arc<[u8]> {
        self.zero
            .get_or_init(|| Arc::from(vec![0u8; STORE_PAGE as usize]))
            .clone()
    }

    /// Read `len` bytes starting at `offset`. Holes read as zeros.
    ///
    /// A read contained in one page is zero-copy: it returns a view of the
    /// resident page (or of a shared zero page for a hole).
    pub fn read(&self, offset: u64, len: usize) -> Bytes {
        let in_page = (offset % STORE_PAGE) as usize;
        if in_page + len <= STORE_PAGE as usize {
            let page = match self.pages.get(&(offset / STORE_PAGE)) {
                Some(page) => page.clone(),
                None => self.zero_page(),
            };
            return Bytes::from_shared(page).slice(in_page..in_page + len);
        }
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let page_idx = abs / STORE_PAGE;
            let in_page = (abs % STORE_PAGE) as usize;
            let chunk = ((STORE_PAGE as usize) - in_page).min(len - pos);
            if let Some(page) = self.pages.get(&page_idx) {
                out[pos..pos + chunk].copy_from_slice(&page[in_page..in_page + chunk]);
            }
            pos += chunk;
        }
        Bytes::from(out)
    }

    /// Write `data` starting at `offset`.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page_idx = abs / STORE_PAGE;
            let in_page = (abs % STORE_PAGE) as usize;
            let chunk = ((STORE_PAGE as usize) - in_page).min(data.len() - pos);
            let slot = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| Arc::from(vec![0u8; STORE_PAGE as usize]));
            if Arc::get_mut(slot).is_none() {
                // Copy-on-write: an outstanding read view still shares this
                // page; give the store a private copy before mutating.
                let private: Arc<[u8]> = Arc::from(&slot[..]);
                *slot = private;
            }
            if let Some(page) = Arc::get_mut(slot) {
                page[in_page..in_page + chunk].copy_from_slice(&data[pos..pos + chunk]);
            }
            pos += chunk;
        }
        self.bytes_written += data.len() as u64;
    }

    /// Number of resident pages (sparse footprint).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes written over the store's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holes_read_as_zeros() {
        let store = BlockStore::new();
        let data = store.read(12_345, 100);
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(data.len(), 100);
        // A hole read spanning pages also reads zero.
        let wide = store.read(STORE_PAGE - 7, 50);
        assert!(wide.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let mut store = BlockStore::new();
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        // Deliberately straddle several pages at an odd offset.
        store.write(STORE_PAGE * 3 + 17, &payload);
        let back = store.read(STORE_PAGE * 3 + 17, payload.len());
        assert_eq!(&back[..], &payload[..]);
        // Just before and after are still zero.
        assert_eq!(store.read(STORE_PAGE * 3 + 16, 1)[0], 0);
        assert_eq!(
            store.read(STORE_PAGE * 3 + 17 + payload.len() as u64, 1)[0],
            0
        );
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut store = BlockStore::new();
        store.write(100, &[1u8; 200]);
        store.write(150, &[2u8; 50]);
        let back = store.read(100, 200);
        assert!(back[..50].iter().all(|&b| b == 1));
        assert!(back[50..100].iter().all(|&b| b == 2));
        assert!(back[100..].iter().all(|&b| b == 1));
    }

    #[test]
    fn sparse_footprint_stays_small() {
        let mut store = BlockStore::new();
        store.write(0, &[7u8; 1]);
        store.write(STORE_PAGE * 1000, &[7u8; 1]);
        assert_eq!(store.resident_pages(), 2);
        assert_eq!(store.bytes_written(), 2);
    }

    #[test]
    fn single_page_read_shares_the_page() {
        let mut store = BlockStore::new();
        store.write(0, &[9u8; 1024]);
        let a = store.read(0, 512);
        let b = store.read(256, 512);
        assert!(a.iter().all(|&x| x == 9));
        assert_eq!(&b[..256], &[9u8; 256][..]);
        // Both reads share the resident page rather than copying it:
        // strong count = store + a + b.
        let page = store.pages.get(&0).unwrap();
        assert_eq!(Arc::strong_count(page), 3);
    }

    #[test]
    fn write_after_read_does_not_mutate_outstanding_views() {
        let mut store = BlockStore::new();
        store.write(0, &[1u8; 100]);
        let view = store.read(0, 100);
        store.write(0, &[2u8; 100]);
        // The earlier view still sees the old bytes (copy-on-write)…
        assert!(view.iter().all(|&b| b == 1));
        // …while a fresh read sees the new ones.
        assert!(store.read(0, 100).iter().all(|&b| b == 2));
    }

    #[test]
    fn hole_reads_share_one_zero_page() {
        let store = BlockStore::new();
        let a = store.read(0, 64);
        let b = store.read(STORE_PAGE * 5 + 3, 64);
        assert!(a.iter().chain(b.iter()).all(|&x| x == 0));
        // Both are views of the same lazily created zero page.
        assert_eq!(Arc::strong_count(store.zero.get().unwrap()), 3);
        assert_eq!(store.resident_pages(), 0);
    }
}
