//! Sparse in-memory byte store backing a simulated disk.
//!
//! The simulation carries *real data* end to end so that integration tests
//! can assert byte-for-byte integrity through striping, caching, and
//! prefetching. Unwritten regions read back as zeros, like a fresh disk.

use std::collections::BTreeMap;

use bytes::Bytes;

/// Internal page size of the sparse store (independent of any file-system
/// block size above it).
pub const STORE_PAGE: u64 = 8 * 1024;

/// A sparse, page-granular byte store addressed by absolute disk offset.
#[derive(Default)]
pub struct BlockStore {
    pages: BTreeMap<u64, Box<[u8]>>,
    /// Total bytes ever written (for capacity accounting in tests).
    bytes_written: u64,
}

impl BlockStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read `len` bytes starting at `offset`. Holes read as zeros.
    pub fn read(&self, offset: u64, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let page_idx = abs / STORE_PAGE;
            let in_page = (abs % STORE_PAGE) as usize;
            let chunk = ((STORE_PAGE as usize) - in_page).min(len - pos);
            if let Some(page) = self.pages.get(&page_idx) {
                out[pos..pos + chunk].copy_from_slice(&page[in_page..in_page + chunk]);
            }
            pos += chunk;
        }
        Bytes::from(out)
    }

    /// Write `data` starting at `offset`.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let page_idx = abs / STORE_PAGE;
            let in_page = (abs % STORE_PAGE) as usize;
            let chunk = ((STORE_PAGE as usize) - in_page).min(data.len() - pos);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| vec![0u8; STORE_PAGE as usize].into_boxed_slice());
            page[in_page..in_page + chunk].copy_from_slice(&data[pos..pos + chunk]);
            pos += chunk;
        }
        self.bytes_written += data.len() as u64;
    }

    /// Number of resident pages (sparse footprint).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes written over the store's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holes_read_as_zeros() {
        let store = BlockStore::new();
        let data = store.read(12_345, 100);
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(data.len(), 100);
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let mut store = BlockStore::new();
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        // Deliberately straddle several pages at an odd offset.
        store.write(STORE_PAGE * 3 + 17, &payload);
        let back = store.read(STORE_PAGE * 3 + 17, payload.len());
        assert_eq!(&back[..], &payload[..]);
        // Just before and after are still zero.
        assert_eq!(store.read(STORE_PAGE * 3 + 16, 1)[0], 0);
        assert_eq!(
            store.read(STORE_PAGE * 3 + 17 + payload.len() as u64, 1)[0],
            0
        );
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut store = BlockStore::new();
        store.write(100, &[1u8; 200]);
        store.write(150, &[2u8; 50]);
        let back = store.read(100, 200);
        assert!(back[..50].iter().all(|&b| b == 1));
        assert!(back[50..100].iter().all(|&b| b == 2));
        assert!(back[100..].iter().all(|&b| b == 1));
    }

    #[test]
    fn sparse_footprint_stays_small() {
        let mut store = BlockStore::new();
        store.write(0, &[7u8; 1]);
        store.write(STORE_PAGE * 1000, &[7u8; 1]);
        assert_eq!(store.resident_pages(), 2);
        assert_eq!(store.bytes_written(), 2);
    }
}
