//! Disk timing parameters.
//!
//! The model is first-order: a request costs controller overhead +
//! positioning (seek + rotational latency, skipped for sequential access
//! that a track buffer would absorb) + media transfer. Parameters are
//! calibrated in `paragon-machine::calib` so that an 8-compute-node
//! collective 1024 KB read costs ≈ 0.45 s, matching Table 2 of the paper.

use paragon_sim::SimDuration;

/// Timing and geometry parameters for one spindle.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Average random seek time.
    pub avg_seek: SimDuration,
    /// Track-to-track ("near") seek time.
    pub track_seek: SimDuration,
    /// Full platter revolution period (avg rotational delay is half this).
    pub rotation: SimDuration,
    /// Sustained media transfer rate, bytes/second.
    pub transfer_bw: f64,
    /// Fixed per-request controller + driver overhead.
    pub controller_overhead: SimDuration,
    /// Head distance (bytes) under which a seek counts as track-to-track.
    pub near_threshold: u64,
    /// Forward gap (bytes) the track buffer covers: a request starting
    /// within this window after the previous end pays no positioning cost.
    pub sequential_window: u64,
    /// Relative jitter (0.0..1.0) applied to positioning times, drawn from
    /// the disk's deterministic RNG stream.
    pub seek_jitter: f64,
    /// Read-cache segments: the drive tracks this many concurrent
    /// sequential streams (segmented track caches were standard by the
    /// mid-90s precisely to serve multi-stream server workloads). A
    /// request within `sequential_window` of any segment is positioned
    /// for free.
    pub cache_segments: usize,
}

impl DiskParams {
    /// A circa-1995 SCSI drive of the class used in Paragon RAID-3 arrays.
    ///
    /// ~9 ms average seek, 1.5 ms track-to-track, 4500 RPM, ~1.1 MB/s
    /// sustained media rate, ~1.1 ms controller overhead per request.
    pub fn scsi_1995() -> Self {
        DiskParams {
            avg_seek: SimDuration::from_micros(9_000),
            track_seek: SimDuration::from_micros(1_500),
            rotation: SimDuration::from_micros(13_333), // 4500 RPM
            transfer_bw: 1.1e6,
            controller_overhead: SimDuration::from_micros(1_100),
            near_threshold: 1024 * 1024,
            sequential_window: 512 * 1024,
            seek_jitter: 0.25,
            cache_segments: 8,
        }
    }

    /// An idealized disk with zero positioning costs; useful in unit tests
    /// where only bandwidth matters.
    pub fn ideal(transfer_bw: f64) -> Self {
        DiskParams {
            avg_seek: SimDuration::ZERO,
            track_seek: SimDuration::ZERO,
            rotation: SimDuration::ZERO,
            transfer_bw,
            controller_overhead: SimDuration::ZERO,
            near_threshold: 0,
            sequential_window: u64::MAX,
            seek_jitter: 0.0,
            cache_segments: 1,
        }
    }

    /// Pure media-transfer time for `len` bytes.
    pub fn transfer_time(&self, len: u64) -> SimDuration {
        if len == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::for_bytes(len, self.transfer_bw)
        }
    }
}

/// How the disk server orders queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-come, first-served (the Paragon default the paper describes).
    Fifo,
    /// C-SCAN elevator: serve ascending offsets, wrap at the top.
    Elevator,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let p = DiskParams::ideal(1_000_000.0);
        assert_eq!(p.transfer_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(p.transfer_time(500_000), SimDuration::from_millis(500));
        assert_eq!(p.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn scsi_1995_is_self_consistent() {
        let p = DiskParams::scsi_1995();
        assert!(p.track_seek < p.avg_seek);
        assert!(p.sequential_window <= p.near_threshold);
        // A 64 KB transfer takes ~60 ms at 1.1 MB/s.
        let t = p.transfer_time(64 * 1024).as_millis();
        assert!((50..80).contains(&t), "unexpected transfer time {t} ms");
    }
}
