//! One simulated spindle: a server task draining a request queue with FIFO
//! or C-SCAN elevator order, charging the timing model per request, and
//! reading/writing real bytes in a sparse store.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use paragon_sim::sync::{channel, oneshot, OneshotSender, Receiver, Sender};
use paragon_sim::{ev, DiskFault, EventKind, FaultPlan, ReqId, Rng, Sim, SimDuration, Track};

use crate::params::{DiskParams, SchedPolicy};
use crate::store::BlockStore;

/// Why a disk request failed. Injected by the simulation's
/// [`FaultPlan`]; never produced on a healthy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// One-shot media error; a retry of the same request may succeed.
    Transient,
    /// The member is dead: every request fails until the plan revives it.
    Dead,
    /// The disk's server task is gone (simulated controller crash).
    Down,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Transient => write!(f, "transient media error"),
            DiskError::Dead => write!(f, "disk dead"),
            DiskError::Down => write!(f, "disk server down"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A disk operation.
#[derive(Debug, Clone)]
pub enum DiskOp {
    /// Read `len` bytes at byte offset `offset`.
    Read { offset: u64, len: u32 },
    /// Write the payload at byte offset `offset`.
    Write { offset: u64, data: Bytes },
    /// Timing-only read: charged and scheduled exactly like
    /// [`DiskOp::Read`], but no payload is produced. Used by the RAID
    /// layer, which keeps the array's bytes in one logical store and uses
    /// member disks purely as service-time models.
    ReadTiming { offset: u64, len: u32 },
    /// Timing-only write: charged like [`DiskOp::Write`] with `len`
    /// payload bytes, but nothing is stored.
    WriteTiming { offset: u64, len: u32 },
}

impl DiskOp {
    fn offset(&self) -> u64 {
        match self {
            DiskOp::Read { offset, .. }
            | DiskOp::Write { offset, .. }
            | DiskOp::ReadTiming { offset, .. }
            | DiskOp::WriteTiming { offset, .. } => *offset,
        }
    }

    fn len(&self) -> u64 {
        match self {
            DiskOp::Read { len, .. } | DiskOp::ReadTiming { len, .. } => *len as u64,
            DiskOp::Write { data, .. } => data.len() as u64,
            DiskOp::WriteTiming { len, .. } => *len as u64,
        }
    }
}

struct DiskRequest {
    op: DiskOp,
    req: ReqId,
    reply: OneshotSender<Result<Bytes, DiskError>>,
}

/// Cumulative per-disk counters, readable while the simulation runs.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Requests completed.
    pub requests: u64,
    /// Bytes read from media.
    pub bytes_read: u64,
    /// Bytes written to media.
    pub bytes_written: u64,
    /// Virtual time the disk spent servicing requests.
    pub busy: SimDuration,
    /// Requests that hit the sequential window (no positioning cost).
    pub sequential_hits: u64,
    /// Track-to-track seeks.
    pub near_seeks: u64,
    /// Full-stroke (average) seeks.
    pub far_seeks: u64,
    /// Deepest queue observed.
    pub max_queue_depth: usize,
    /// Requests failed by fault injection.
    pub faulted: u64,
}

/// Handle to a simulated disk. Clone freely; all clones enqueue to the same
/// server task.
#[derive(Clone)]
pub struct Disk {
    tx: Sender<DiskRequest>,
    stats: Rc<RefCell<DiskStats>>,
    /// Service-time multiplier (failure injection: hot spots, degraded mode).
    slowdown: Rc<Cell<f64>>,
    /// Flight-recorder lane for this spindle's DiskStart/DiskDone events.
    track: Rc<Cell<Track>>,
    /// Live queue depth (requests waiting, not counting the one in
    /// service), maintained by the server loop for telemetry gauges.
    queue: Rc<Cell<usize>>,
}

impl Disk {
    /// Create a disk and spawn its server task on `sim`.
    ///
    /// `label` names the RNG stream for seek jitter, so two disks with the
    /// same parameters still jitter independently but deterministically.
    pub fn new(sim: &Sim, params: DiskParams, policy: SchedPolicy, label: &str) -> Disk {
        let (tx, rx) = channel::<DiskRequest>();
        let stats = Rc::new(RefCell::new(DiskStats::default()));
        let slowdown = Rc::new(Cell::new(1.0));
        let track = Rc::new(Cell::new(Track::Sys));
        let queue = Rc::new(Cell::new(0usize));
        let disk = Disk {
            tx,
            stats: stats.clone(),
            slowdown: slowdown.clone(),
            track: track.clone(),
            queue: queue.clone(),
        };
        let rng = sim.rng(&format!("disk.{label}"));
        let sim2 = sim.clone();
        let faults = sim.faults();
        sim.spawn_named(
            "disk-server",
            server_loop(
                sim2, rx, params, policy, stats, slowdown, rng, track, faults, queue,
            ),
        );
        disk
    }

    /// Assign the flight-recorder lane this spindle's events appear on
    /// (the machine wires a globally unique `Track::Disk` index).
    pub fn set_track(&self, track: Track) {
        self.track.set(track);
    }

    /// Read `len` bytes at `offset`; resolves when the media transfer ends.
    /// Fails only under fault injection (a crashed server task or an
    /// injected media error).
    pub async fn read(&self, offset: u64, len: u32) -> Result<Bytes, DiskError> {
        self.read_req(offset, len, 0).await
    }

    /// [`Disk::read`] under flight-recorder request context `req`.
    pub async fn read_req(&self, offset: u64, len: u32, req: ReqId) -> Result<Bytes, DiskError> {
        let (otx, orx) = oneshot();
        if self
            .tx
            .send(DiskRequest {
                op: DiskOp::Read { offset, len },
                req,
                reply: otx,
            })
            .is_err()
        {
            return Err(DiskError::Down);
        }
        orx.await.unwrap_or(Err(DiskError::Down))
    }

    /// Write `data` at `offset`; resolves when the media transfer ends.
    pub async fn write(&self, offset: u64, data: Bytes) -> Result<(), DiskError> {
        self.write_req(offset, data, 0).await
    }

    /// [`Disk::write`] under flight-recorder request context `req`.
    pub async fn write_req(&self, offset: u64, data: Bytes, req: ReqId) -> Result<(), DiskError> {
        let (otx, orx) = oneshot();
        if self
            .tx
            .send(DiskRequest {
                op: DiskOp::Write { offset, data },
                req,
                reply: otx,
            })
            .is_err()
        {
            return Err(DiskError::Down);
        }
        orx.await.unwrap_or(Err(DiskError::Down)).map(|_| ())
    }

    /// Timing-only read: identical queueing, service time, events, fault
    /// behaviour, and counters to [`Disk::read_req`], but no bytes move.
    pub async fn read_timing_req(
        &self,
        offset: u64,
        len: u32,
        req: ReqId,
    ) -> Result<(), DiskError> {
        let (otx, orx) = oneshot();
        if self
            .tx
            .send(DiskRequest {
                op: DiskOp::ReadTiming { offset, len },
                req,
                reply: otx,
            })
            .is_err()
        {
            return Err(DiskError::Down);
        }
        orx.await.unwrap_or(Err(DiskError::Down)).map(|_| ())
    }

    /// Timing-only write: identical to [`Disk::write_req`] with a `len`-byte
    /// payload, but no bytes move.
    pub async fn write_timing_req(
        &self,
        offset: u64,
        len: u32,
        req: ReqId,
    ) -> Result<(), DiskError> {
        let (otx, orx) = oneshot();
        if self
            .tx
            .send(DiskRequest {
                op: DiskOp::WriteTiming { offset, len },
                req,
                reply: otx,
            })
            .is_err()
        {
            return Err(DiskError::Down);
        }
        orx.await.unwrap_or(Err(DiskError::Down)).map(|_| ())
    }

    /// Snapshot of the disk's counters.
    pub fn stats(&self) -> DiskStats {
        self.stats.borrow().clone()
    }

    /// The live queue-depth cell this spindle's server loop maintains;
    /// telemetry gauges read it while the simulation runs.
    pub fn queue_cell(&self) -> Rc<Cell<usize>> {
        self.queue.clone()
    }

    /// Multiply all future service times by `factor` (1.0 = nominal).
    /// Used by failure-injection experiments to create a hot spot.
    pub fn set_slowdown(&self, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.slowdown.set(factor);
    }
}

#[allow(clippy::too_many_arguments)]
async fn server_loop(
    sim: Sim,
    mut rx: Receiver<DiskRequest>,
    params: DiskParams,
    policy: SchedPolicy,
    stats: Rc<RefCell<DiskStats>>,
    slowdown: Rc<Cell<f64>>,
    mut rng: Rng,
    track: Rc<Cell<Track>>,
    faults: FaultPlan,
    queue: Rc<Cell<usize>>,
) {
    let mut store = BlockStore::new();
    // Head position: byte offset just past the last serviced request.
    let mut head: u64 = 0;
    // Tracks the dead/alive edge so FaultDiskDown is emitted once per death,
    // letting trace consumers distinguish a dead member's errors from
    // transient media errors (see EventKind::FaultDiskError).
    let mut was_dead = false;
    // Segmented read cache: the streams the drive is tracking.
    let mut segments = Segments::new(params.cache_segments.max(1));
    // Elevator state: pending requests keyed by (offset, arrival seq).
    let mut pending: BTreeMap<(u64, u64), DiskRequest> = BTreeMap::new();
    let mut arrival_seq: u64 = 0;
    // N-step SCAN: the sweep currently being served, in offset order.
    // Requests that arrive mid-sweep wait for the next snapshot, which
    // makes the elevator starvation-free.
    let mut sweep: Vec<(u64, u64)> = Vec::new();

    loop {
        // Refill the pending set without blocking.
        while let Some(req) = rx.try_recv() {
            pending.insert((req.op.offset(), arrival_seq), req);
            arrival_seq += 1;
        }
        if pending.is_empty() {
            queue.set(0);
            match rx.recv().await {
                Some(req) => {
                    pending.insert((req.op.offset(), arrival_seq), req);
                    arrival_seq += 1;
                }
                None => return, // all handles dropped
            }
            continue; // re-run refill to batch simultaneous arrivals
        }
        {
            let mut st = stats.borrow_mut();
            let depth = pending.len() + rx.len();
            st.max_queue_depth = st.max_queue_depth.max(depth);
        }
        queue.set(pending.len().saturating_sub(1) + rx.len());

        let key = match policy {
            SchedPolicy::Fifo => {
                // Earliest arrival (pending is nonempty here).
                match pending.iter().min_by_key(|((_, seq), _)| *seq) {
                    Some((k, _)) => *k,
                    None => continue,
                }
            }
            SchedPolicy::Elevator => {
                // N-step SCAN: snapshot the queue, serve it in offset
                // order, re-snapshot when drained.
                sweep.retain(|k| pending.contains_key(k));
                if sweep.is_empty() {
                    sweep = pending.keys().copied().collect();
                    // BTreeMap keys are already (offset, seq)-sorted;
                    // serve descending from the back for O(1) pops.
                    sweep.reverse();
                }
                match sweep.pop() {
                    Some(k) => k,
                    None => continue,
                }
            }
        };
        let Some(req) = pending.remove(&key) else {
            continue;
        };

        let offset = req.op.offset();
        let len = req.op.len();

        // Consult the fault plan. A dead member fails fast (the controller
        // knows the device is gone); a transient media error is discovered
        // only after the service attempt, so it still charges full time.
        let fault = match (track.get(), &req.op) {
            (Track::Disk(i), DiskOp::Read { .. } | DiskOp::ReadTiming { .. }) => {
                faults.disk_read_fault(i)
            }
            (Track::Disk(i), DiskOp::Write { .. } | DiskOp::WriteTiming { .. }) => {
                faults.disk_write_fault(i)
            }
            _ => None,
        };
        if fault == Some(DiskFault::Dead) {
            if !was_dead {
                was_dead = true;
                sim.emit(|| ev(track.get(), EventKind::FaultDiskDown, req.req, 0, 0));
            }
            sim.emit(|| ev(track.get(), EventKind::FaultDiskError, req.req, offset, len));
            stats.borrow_mut().faulted += 1;
            req.reply.send(Err(DiskError::Dead));
            continue;
        }
        was_dead = false;

        let service = service_time(&params, &mut segments, head, offset, len, &mut rng, &stats);
        let service = scale(service, slowdown.get());
        sim.emit(|| ev(track.get(), EventKind::DiskStart, req.req, offset, len));
        sim.sleep(service).await;
        sim.emit(|| ev(track.get(), EventKind::DiskDone, req.req, offset, len));
        head = offset + len;

        {
            let mut st = stats.borrow_mut();
            st.requests += 1;
            st.busy += service;
        }
        if fault == Some(DiskFault::Transient) {
            sim.emit(|| ev(track.get(), EventKind::FaultDiskError, req.req, offset, len));
            stats.borrow_mut().faulted += 1;
            req.reply.send(Err(DiskError::Transient));
            continue;
        }
        match req.op {
            DiskOp::Read { offset, len } => {
                stats.borrow_mut().bytes_read += len as u64;
                let data = store.read(offset, len as usize);
                req.reply.send(Ok(data));
            }
            DiskOp::Write { offset, data } => {
                stats.borrow_mut().bytes_written += data.len() as u64;
                store.write(offset, &data);
                req.reply.send(Ok(Bytes::new()));
            }
            DiskOp::ReadTiming { len, .. } => {
                stats.borrow_mut().bytes_read += len as u64;
                req.reply.send(Ok(Bytes::new()));
            }
            DiskOp::WriteTiming { len, .. } => {
                stats.borrow_mut().bytes_written += len as u64;
                req.reply.send(Ok(Bytes::new()));
            }
        }
    }
}

/// The drive's segmented read cache: stream positions with LRU stamps.
struct Segments {
    slots: Vec<(u64, u64)>, // (position just past the stream's last byte, stamp)
    cap: usize,
    clock: u64,
}

impl Segments {
    fn new(cap: usize) -> Self {
        Segments {
            slots: Vec::with_capacity(cap),
            cap,
            clock: 0,
        }
    }

    /// Distance from `offset` to the nearest tracked stream.
    fn nearest_gap(&self, offset: u64) -> u64 {
        self.slots
            .iter()
            .map(|&(pos, _)| offset.abs_diff(pos))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Record that a stream now ends at `end`: refresh the matching
    /// segment (within `window`) or evict the LRU one.
    fn advance(&mut self, offset: u64, end: u64, window: u64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self
            .slots
            .iter_mut()
            .find(|(pos, _)| offset.abs_diff(*pos) <= window)
        {
            *slot = (end, clock);
            return;
        }
        if self.slots.len() < self.cap {
            self.slots.push((end, clock));
        } else if let Some(lru) = self.slots.iter_mut().min_by_key(|(_, stamp)| *stamp) {
            // cap >= 1, so a full slot list always has an LRU entry.
            *lru = (end, clock);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn service_time(
    params: &DiskParams,
    segments: &mut Segments,
    head: u64,
    offset: u64,
    len: u64,
    rng: &mut Rng,
    stats: &Rc<RefCell<DiskStats>>,
) -> SimDuration {
    // A request adjacent (either direction) to any tracked stream is
    // served from / primed by the segment cache: free positioning.
    let gap = segments.nearest_gap(offset).min(offset.abs_diff(head));
    let positioning = match gap {
        gap if gap <= params.sequential_window => {
            stats.borrow_mut().sequential_hits += 1;
            SimDuration::ZERO
        }
        dist if dist <= params.near_threshold => {
            // Track-class seek: the head barely moves and full-track
            // buffering hides most of the rotational delay.
            stats.borrow_mut().near_seeks += 1;
            jitter(params.track_seek, params.seek_jitter, rng)
        }
        _ => {
            stats.borrow_mut().far_seeks += 1;
            let rotational = params.rotation / 2;
            jitter(params.avg_seek, params.seek_jitter, rng) + rotational
        }
    };
    segments.advance(offset, offset + len, params.sequential_window);
    params.controller_overhead + positioning + params.transfer_time(len)
}

fn jitter(base: SimDuration, rel: f64, rng: &mut Rng) -> SimDuration {
    if rel == 0.0 || base.is_zero() {
        return base;
    }
    let f = 1.0 + rng.range_f64(-rel..rel);
    SimDuration::from_nanos((base.as_nanos() as f64 * f).round() as u64)
}

fn scale(d: SimDuration, factor: f64) -> SimDuration {
    if factor == 1.0 {
        d
    } else {
        SimDuration::from_nanos((d.as_nanos() as f64 * factor).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::SimTime;

    fn fixed_disk(sim: &Sim, bw: f64) -> Disk {
        Disk::new(sim, DiskParams::ideal(bw), SchedPolicy::Fifo, "t0")
    }

    #[test]
    fn write_then_read_roundtrips_data() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1e6);
        let d2 = disk.clone();
        let h = sim.spawn(async move {
            let payload = Bytes::from(vec![0xabu8; 4096]);
            d2.write(1000, payload.clone()).await.unwrap();
            let back = d2.read(1000, 4096).await.unwrap();
            back == payload
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn ideal_disk_charges_pure_bandwidth() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1_000_000.0);
        let d2 = disk.clone();
        let h = sim.spawn(async move {
            d2.read(0, 500_000).await.unwrap();
        });
        sim.run();
        drop(h);
        // 500 KB at 1 MB/s = 0.5 s.
        assert_eq!(disk.stats().busy, SimDuration::from_millis(500));
    }

    #[test]
    fn fifo_services_in_arrival_order() {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, DiskParams::ideal(1e6), SchedPolicy::Fifo, "fifo");
        let order: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        // Enqueue far-apart offsets in a scrambled order; FIFO must keep it.
        for off in [900_000u64, 100_000, 500_000] {
            let d = disk.clone();
            let o = order.clone();
            sim.spawn(async move {
                d.read(off, 1000).await.unwrap();
                o.borrow_mut().push(off);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![900_000, 100_000, 500_000]);
    }

    #[test]
    fn elevator_services_in_scan_order() {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, DiskParams::ideal(1e6), SchedPolicy::Elevator, "elev");
        let order: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let d0 = disk.clone();
        let o0 = order.clone();
        let s0 = sim.clone();
        // Occupy the disk so the following three requests queue up together.
        sim.spawn(async move {
            d0.read(0, 100_000).await.unwrap();
            o0.borrow_mut().push(0);
        });
        for off in [900_000u64, 200_000, 500_000] {
            let d = disk.clone();
            let o = order.clone();
            let s = s0.clone();
            sim.spawn(async move {
                // Arrive while the first request is being serviced.
                s.sleep(SimDuration::from_millis(10)).await;
                d.read(off, 1000).await.unwrap();
                o.borrow_mut().push(off);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 200_000, 500_000, 900_000]);
    }

    #[test]
    fn sequential_reads_skip_positioning() {
        let sim = Sim::new(1);
        let mut params = DiskParams::scsi_1995();
        params.seek_jitter = 0.0;
        let disk = Disk::new(&sim, params, SchedPolicy::Fifo, "seq");
        let d = disk.clone();
        sim.spawn(async move {
            for i in 0..8u64 {
                d.read(i * 64 * 1024, 64 * 1024).await.unwrap();
            }
        });
        sim.run();
        let st = disk.stats();
        // First request seeks (head at 0, request at 0 counts as sequential
        // because the forward gap is zero), rest are sequential.
        assert_eq!(st.sequential_hits, 8);
        assert_eq!(st.far_seeks + st.near_seeks, 0);
    }

    #[test]
    fn random_reads_pay_seeks() {
        let sim = Sim::new(1);
        let params = DiskParams::scsi_1995();
        let disk = Disk::new(&sim, params, SchedPolicy::Fifo, "rnd");
        let d = disk.clone();
        sim.spawn(async move {
            // Touch ten scattered regions: each first touch is a fresh
            // stream the segment cache has never seen.
            for i in 1..=10u64 {
                d.read(i * 512 * 1024 * 1024, 8 * 1024).await.unwrap();
            }
        });
        sim.run();
        let st = disk.stats();
        assert!(st.far_seeks >= 9, "expected far seeks, got {st:?}");
    }

    #[test]
    fn segment_cache_tracks_interleaved_streams() {
        // Two interleaved sequential streams: a single-head model would
        // seek on every request; a segmented cache serves both freely
        // after the first touch of each.
        let sim = Sim::new(1);
        let mut params = DiskParams::scsi_1995();
        params.seek_jitter = 0.0;
        let disk = Disk::new(&sim, params, SchedPolicy::Fifo, "seg");
        let d = disk.clone();
        sim.spawn(async move {
            for i in 0..6u64 {
                d.read(i * 64 * 1024, 64 * 1024).await.unwrap(); // stream A
                d.read(1 << 30 | (i * 64 * 1024), 64 * 1024).await.unwrap(); // stream B
            }
        });
        sim.run();
        let st = disk.stats();
        assert_eq!(st.far_seeks, 1, "only stream B's first touch seeks: {st:?}");
        assert_eq!(st.sequential_hits, 11);
    }

    #[test]
    fn slowdown_scales_service_time() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1e6);
        disk.set_slowdown(3.0);
        let d = disk.clone();
        let h = sim.spawn(async move {
            d.read(0, 100_000).await.unwrap();
        });
        let report = sim.run();
        drop(h);
        // 100 KB at 1 MB/s = 0.1 s, tripled = 0.3 s.
        assert_eq!(
            report.end_time,
            SimTime::ZERO + SimDuration::from_millis(300)
        );
    }

    #[test]
    fn queue_depth_high_water_is_tracked() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1e6);
        for i in 0..5u64 {
            let d = disk.clone();
            sim.spawn(async move {
                d.read(i * 1000, 1000).await.unwrap();
            });
        }
        sim.run();
        assert!(disk.stats().max_queue_depth >= 4);
    }

    #[test]
    fn injected_transient_error_fails_once_then_recovers() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1e6);
        disk.set_track(Track::Disk(0));
        sim.faults().schedule_disk_transients(0, 1);
        sim.faults().arm();
        let d = disk.clone();
        let h = sim.spawn(async move {
            d.write(0, Bytes::from(vec![7u8; 64])).await.unwrap();
            let first = d.read(0, 64).await;
            let second = d.read(0, 64).await;
            (first, second)
        });
        sim.run();
        let (first, second) = h.try_take().unwrap();
        assert_eq!(first, Err(DiskError::Transient));
        assert_eq!(second.unwrap(), Bytes::from(vec![7u8; 64]));
        assert_eq!(disk.stats().faulted, 1);
    }

    #[test]
    fn dead_disk_fails_fast_without_charging_service() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1e6);
        disk.set_track(Track::Disk(4));
        sim.faults().kill_disk(4);
        sim.faults().arm();
        let d = disk.clone();
        let h = sim.spawn(async move { d.read(0, 500_000).await });
        let report = sim.run();
        assert_eq!(h.try_take(), Some(Err(DiskError::Dead)));
        assert_eq!(report.end_time, SimTime::ZERO, "no media time charged");
        assert_eq!(disk.stats().busy, SimDuration::ZERO);
    }

    #[test]
    fn requests_to_a_crashed_server_return_down() {
        let sim = Sim::new(1);
        let disk = fixed_disk(&sim, 1e6);
        // Tear down the world (drops the server task), then submit.
        sim.run();
        sim.shutdown();
        let d = disk.clone();
        let sim2 = Sim::new(2);
        let h = sim2.spawn(async move { d.read(0, 64).await });
        sim2.run();
        assert_eq!(h.try_take(), Some(Err(DiskError::Down)));
    }
}
