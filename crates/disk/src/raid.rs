//! RAID-3-style array: one logical device striped byte-wise across N
//! spindles with synchronized service.
//!
//! Each Paragon I/O node drove a SCSI-8 RAID array. We model it as N member
//! disks with a fine interleave; a logical request splits into per-member
//! extents serviced concurrently, and completes when the slowest member
//! finishes. Sustained logical bandwidth ≈ N × member media rate.

use bytes::{Bytes, BytesMut};
use paragon_sim::{ReqId, Sim, Track};

use crate::disk::{Disk, DiskStats};
use crate::params::{DiskParams, SchedPolicy};

/// Striping math shared by the array (and tested independently): maps a
/// logical byte extent onto per-member `(member, offset, len)` pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMap {
    /// Bytes per stripe unit on one member.
    pub interleave: u64,
    /// Number of members.
    pub width: usize,
}

/// One contiguous piece of a logical extent on one member disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePiece {
    /// Member disk index.
    pub member: usize,
    /// Byte offset within the member disk.
    pub offset: u64,
    /// Piece length in bytes.
    pub len: u64,
    /// Offset of this piece within the logical extent.
    pub logical_offset: u64,
}

impl StripeMap {
    /// Create a map; panics on zero interleave or width (a config bug).
    pub fn new(interleave: u64, width: usize) -> Self {
        assert!(interleave > 0 && width > 0, "invalid stripe map");
        StripeMap { interleave, width }
    }

    /// Map logical `(offset, len)` to per-member pieces, in logical order.
    pub fn split(&self, offset: u64, len: u64) -> Vec<StripePiece> {
        let mut pieces = Vec::new();
        let mut pos = 0u64;
        while pos < len {
            let abs = offset + pos;
            let unit = abs / self.interleave;
            let member = (unit % self.width as u64) as usize;
            let row = unit / self.width as u64;
            let in_unit = abs % self.interleave;
            let chunk = (self.interleave - in_unit).min(len - pos);
            pieces.push(StripePiece {
                member,
                offset: row * self.interleave + in_unit,
                len: chunk,
                logical_offset: pos,
            });
            pos += chunk;
        }
        pieces
    }

    /// Inverse of [`StripeMap::split`] for a single byte: logical offset of
    /// byte `member_offset` on `member`.
    pub fn to_logical(&self, member: usize, member_offset: u64) -> u64 {
        let row = member_offset / self.interleave;
        let in_unit = member_offset % self.interleave;
        (row * self.width as u64 + member as u64) * self.interleave + in_unit
    }
}

/// A logical device striped over member disks.
#[derive(Clone)]
pub struct RaidArray {
    sim: Sim,
    members: Vec<Disk>,
    map: StripeMap,
}

impl RaidArray {
    /// Build an array of `width` members with `interleave`-byte striping.
    pub fn new(
        sim: &Sim,
        params: DiskParams,
        policy: SchedPolicy,
        width: usize,
        interleave: u64,
        label: &str,
    ) -> RaidArray {
        let members = (0..width)
            .map(|i| Disk::new(sim, params.clone(), policy, &format!("{label}.m{i}")))
            .collect();
        RaidArray {
            sim: sim.clone(),
            members,
            map: StripeMap::new(interleave, width),
        }
    }

    /// Number of member disks.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Put member `m` on flight-recorder lane `Track::Disk(base + m)` —
    /// the machine passes a per-array base so every spindle in the world
    /// gets a unique lane.
    pub fn set_tracks(&self, base: u16) {
        for (m, disk) in self.members.iter().enumerate() {
            disk.set_track(Track::Disk(base + m as u16));
        }
    }

    /// Group split pieces into member-contiguous runs — the controller
    /// issues one device command per run, like a real array (otherwise a
    /// request spanning several rows would pay per-unit command overhead).
    fn runs(&self, offset: u64, len: u64) -> Vec<(usize, u64, Vec<StripePiece>)> {
        let mut per_member: Vec<Vec<StripePiece>> = vec![Vec::new(); self.members.len()];
        for p in self.map.split(offset, len) {
            per_member[p.member].push(p);
        }
        let mut runs = Vec::new();
        for (member, mut ps) in per_member.into_iter().enumerate() {
            if ps.is_empty() {
                continue;
            }
            ps.sort_by_key(|p| p.offset);
            let mut current: Vec<StripePiece> = Vec::new();
            for p in ps {
                match current.last() {
                    Some(last) if last.offset + last.len == p.offset => current.push(p),
                    Some(_) => {
                        let start = current[0].offset;
                        runs.push((member, start, std::mem::take(&mut current)));
                        current.push(p);
                    }
                    None => current.push(p),
                }
            }
            let start = current[0].offset;
            runs.push((member, start, current));
        }
        runs
    }

    /// Read a logical extent; completes when every member run completes.
    pub async fn read(&self, offset: u64, len: u32) -> Bytes {
        self.read_req(offset, len, 0).await
    }

    /// [`RaidArray::read`] under flight-recorder request context `req`.
    pub async fn read_req(&self, offset: u64, len: u32, req: ReqId) -> Bytes {
        let runs = self.runs(offset, len as u64);
        let mut handles = Vec::with_capacity(runs.len());
        for (member, start, pieces) in runs {
            let disk = self.members[member].clone();
            let rlen: u64 = pieces.iter().map(|p| p.len).sum();
            handles.push((
                start,
                pieces,
                self.sim
                    .spawn(async move { disk.read_req(start, rlen as u32, req).await }),
            ));
        }
        let mut out = BytesMut::zeroed(len as usize);
        for (start, pieces, h) in handles {
            let data = h.await;
            for p in &pieces {
                let src = (p.offset - start) as usize;
                let dst = p.logical_offset as usize;
                out[dst..dst + p.len as usize].copy_from_slice(&data[src..src + p.len as usize]);
            }
        }
        out.freeze()
    }

    /// Write a logical extent; completes when every member run completes.
    pub async fn write(&self, offset: u64, data: Bytes) {
        let runs = self.runs(offset, data.len() as u64);
        let mut handles = Vec::with_capacity(runs.len());
        for (member, start, pieces) in runs {
            let disk = self.members[member].clone();
            let rlen: u64 = pieces.iter().map(|p| p.len).sum();
            let mut buf = BytesMut::zeroed(rlen as usize);
            for p in &pieces {
                let dst = (p.offset - start) as usize;
                let src = p.logical_offset as usize;
                buf[dst..dst + p.len as usize].copy_from_slice(&data[src..src + p.len as usize]);
            }
            handles.push(
                self.sim
                    .spawn(async move { disk.write(start, buf.freeze()).await }),
            );
        }
        for h in handles {
            h.await;
        }
    }

    /// Aggregate member stats (sums; max for queue depth).
    pub fn stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for m in &self.members {
            let s = m.stats();
            total.requests += s.requests;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.busy += s.busy;
            total.sequential_hits += s.sequential_hits;
            total.near_seeks += s.near_seeks;
            total.far_seeks += s.far_seeks;
            total.max_queue_depth = total.max_queue_depth.max(s.max_queue_depth);
        }
        total
    }

    /// Slow down one member (failure injection).
    pub fn set_member_slowdown(&self, member: usize, factor: f64) {
        self.members[member].set_slowdown(factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::{SimDuration, SimTime};

    #[test]
    fn split_covers_extent_exactly_once() {
        let map = StripeMap::new(16 * 1024, 4);
        let pieces = map.split(10_000, 100_000);
        // Pieces tile the logical extent in order.
        let mut pos = 0u64;
        for p in &pieces {
            assert_eq!(p.logical_offset, pos);
            assert!(p.len > 0 && p.len <= map.interleave);
            pos += p.len;
        }
        assert_eq!(pos, 100_000);
    }

    #[test]
    fn split_roundtrips_through_to_logical() {
        let map = StripeMap::new(4096, 5);
        for (off, len) in [(0u64, 4096u64), (123, 50_000), (4096 * 5, 4096)] {
            for p in map.split(off, len) {
                assert_eq!(map.to_logical(p.member, p.offset), off + p.logical_offset);
            }
        }
    }

    #[test]
    fn aligned_request_uses_all_members_evenly() {
        let map = StripeMap::new(16 * 1024, 4);
        let pieces = map.split(0, 64 * 1024);
        assert_eq!(pieces.len(), 4);
        let members: Vec<usize> = pieces.iter().map(|p| p.member).collect();
        assert_eq!(members, vec![0, 1, 2, 3]);
        assert!(pieces.iter().all(|p| p.len == 16 * 1024));
    }

    #[test]
    fn raid_read_is_parallel_across_members() {
        let sim = Sim::new(1);
        // 4 members at 1 MB/s each; a 400 KB aligned read puts 100 KB on
        // each member, so it takes ~0.1 s, not 0.4 s.
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            4,
            100 * 1024,
            "r0",
        );
        let r = raid.clone();
        sim.spawn(async move {
            r.read(0, 400 * 1024).await;
        });
        let report = sim.run();
        assert_eq!(
            report.end_time,
            SimTime::ZERO + SimDuration::for_bytes(100 * 1024, 1e6)
        );
    }

    #[test]
    fn raid_write_read_roundtrip() {
        let sim = Sim::new(1);
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            3,
            8 * 1024,
            "r1",
        );
        let r = raid.clone();
        let h = sim.spawn(async move {
            let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 256) as u8).collect();
            let payload = Bytes::from(payload);
            r.write(5_000, payload.clone()).await;
            let back = r.read(5_000, 100_000).await;
            back == payload
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn degraded_member_slows_whole_array() {
        let sim = Sim::new(1);
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            4,
            100 * 1024,
            "r2",
        );
        raid.set_member_slowdown(2, 5.0);
        let r = raid.clone();
        sim.spawn(async move {
            r.read(0, 400 * 1024).await;
        });
        let report = sim.run();
        // The slow member gates completion: 100 KB at 1 MB/s × 5.
        assert_eq!(
            report.end_time,
            SimTime::ZERO + SimDuration::from_millis(512)
        );
    }
}
