//! RAID-3-style array: one logical device striped byte-wise across N
//! spindles with synchronized service.
//!
//! Each Paragon I/O node drove a SCSI-8 RAID array. We model it as N member
//! disks with a fine interleave; a logical request splits into per-member
//! extents serviced concurrently, and completes when the slowest member
//! finishes. Sustained logical bandwidth ≈ N × member media rate.
//!
//! With [`RaidArray::new_with_parity`], the array carries one extra parity
//! member holding the byte-wise XOR of the data members at each member
//! offset. Writes then do a read-modify-write of the parity (serialized by
//! a parity lock), and a read that hits a member the fault plan has killed
//! reconstructs the missing range from the survivors plus parity — at the
//! measurable extra cost of `width` additional member reads.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use paragon_sim::sync::Semaphore;
use paragon_sim::{ev, EventKind, ReqId, Sim, Track};

use crate::disk::{Disk, DiskError, DiskStats};
use crate::params::{DiskParams, SchedPolicy};
use crate::store::BlockStore;

/// Striping math shared by the array (and tested independently): maps a
/// logical byte extent onto per-member `(member, offset, len)` pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMap {
    /// Bytes per stripe unit on one member.
    pub interleave: u64,
    /// Number of members.
    pub width: usize,
}

/// One contiguous piece of a logical extent on one member disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePiece {
    /// Member disk index.
    pub member: usize,
    /// Byte offset within the member disk.
    pub offset: u64,
    /// Piece length in bytes.
    pub len: u64,
    /// Offset of this piece within the logical extent.
    pub logical_offset: u64,
}

impl StripeMap {
    /// Create a map; panics on zero interleave or width (a config bug).
    pub fn new(interleave: u64, width: usize) -> Self {
        assert!(interleave > 0 && width > 0, "invalid stripe map");
        StripeMap { interleave, width }
    }

    /// Map logical `(offset, len)` to per-member pieces, in logical order.
    pub fn split(&self, offset: u64, len: u64) -> Vec<StripePiece> {
        let mut pieces = Vec::new();
        let mut pos = 0u64;
        while pos < len {
            let abs = offset + pos;
            let unit = abs / self.interleave;
            let member = (unit % self.width as u64) as usize;
            let row = unit / self.width as u64;
            let in_unit = abs % self.interleave;
            let chunk = (self.interleave - in_unit).min(len - pos);
            pieces.push(StripePiece {
                member,
                offset: row * self.interleave + in_unit,
                len: chunk,
                logical_offset: pos,
            });
            pos += chunk;
        }
        pieces
    }

    /// Inverse of [`StripeMap::split`] for a single byte: logical offset of
    /// byte `member_offset` on `member`.
    pub fn to_logical(&self, member: usize, member_offset: u64) -> u64 {
        let row = member_offset / self.interleave;
        let in_unit = member_offset % self.interleave;
        (row * self.width as u64 + member as u64) * self.interleave + in_unit
    }
}

/// Array-level counters beyond the per-member [`DiskStats`].
#[derive(Debug, Default, Clone)]
pub struct RaidStats {
    /// Member runs served by parity reconstruction instead of the member.
    pub reconstructed_reads: u64,
    /// Bytes produced by reconstruction.
    pub reconstructed_bytes: u64,
    /// Parity read-modify-write cycles performed.
    pub parity_rmws: u64,
}

/// A logical device striped over member disks.
#[derive(Clone)]
pub struct RaidArray {
    sim: Sim,
    members: Vec<Disk>,
    /// Optional dedicated parity member (byte-wise XOR of the data
    /// members). Not part of the logical address space.
    parity: Option<Disk>,
    /// Serializes parity read-modify-writes: two concurrent writes whose
    /// runs land on the same parity range must not interleave their RMWs.
    parity_lock: Semaphore,
    map: StripeMap,
    /// The array's bytes, addressed by *logical* offset. Member disks are
    /// pure service-time models (they carry no payload); keeping the data
    /// in one logical store lets an aligned read hand back a zero-copy
    /// page view instead of gathering interleaved member pieces.
    logical: Rc<RefCell<BlockStore>>,
    /// Flight-recorder lane base set by [`RaidArray::set_tracks`].
    track_base: Rc<Cell<Option<u16>>>,
    rstats: Rc<RefCell<RaidStats>>,
}

impl RaidArray {
    /// Build an array of `width` data members with `interleave`-byte
    /// striping and no parity (a lost member loses data).
    pub fn new(
        sim: &Sim,
        params: DiskParams,
        policy: SchedPolicy,
        width: usize,
        interleave: u64,
        label: &str,
    ) -> RaidArray {
        Self::new_with_parity(sim, params, policy, width, interleave, false, label)
    }

    /// Build an array of `width` data members, plus one parity member when
    /// `parity` is set. Logical capacity and striping are unchanged by
    /// parity; it only adds redundancy (and write cost).
    pub fn new_with_parity(
        sim: &Sim,
        params: DiskParams,
        policy: SchedPolicy,
        width: usize,
        interleave: u64,
        parity: bool,
        label: &str,
    ) -> RaidArray {
        let members = (0..width)
            .map(|i| Disk::new(sim, params.clone(), policy, &format!("{label}.m{i}")))
            .collect();
        let parity = parity.then(|| Disk::new(sim, params.clone(), policy, &format!("{label}.p")));
        RaidArray {
            sim: sim.clone(),
            members,
            parity,
            parity_lock: Semaphore::new(1),
            map: StripeMap::new(interleave, width),
            logical: Rc::new(RefCell::new(BlockStore::new())),
            track_base: Rc::new(Cell::new(None)),
            rstats: Rc::new(RefCell::new(RaidStats::default())),
        }
    }

    /// Number of data members.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// True when the array carries a parity member.
    pub fn has_parity(&self) -> bool {
        self.parity.is_some()
    }

    /// Spindles this array occupies on the flight-recorder lane space:
    /// data members plus the parity member if present.
    pub fn spindles(&self) -> usize {
        self.members.len() + self.parity.iter().count()
    }

    /// Put member `m` on flight-recorder lane `Track::Disk(base + m)` —
    /// the machine passes a per-array base so every spindle in the world
    /// gets a unique lane. The parity member, when present, takes lane
    /// `base + width`.
    pub fn set_tracks(&self, base: u16) {
        self.track_base.set(Some(base));
        for (m, disk) in self.members.iter().enumerate() {
            disk.set_track(Track::Disk(base + m as u16));
        }
        if let Some(p) = &self.parity {
            p.set_track(Track::Disk(base + self.members.len() as u16));
        }
    }

    /// Global `Track::Disk` index of data member `m`, once tracks are set.
    /// This is the index the fault plan's `kill_disk` takes.
    pub fn member_track_index(&self, m: usize) -> Option<u16> {
        self.track_base.get().map(|base| base + m as u16)
    }

    /// Flight-recorder lane of data member `m`.
    fn member_lane(&self, m: usize) -> Track {
        match self.member_track_index(m) {
            Some(i) => Track::Disk(i),
            None => Track::Sys,
        }
    }

    /// Group split pieces into member-contiguous runs — the controller
    /// issues one device command per run, like a real array (otherwise a
    /// request spanning several rows would pay per-unit command overhead).
    fn runs(&self, offset: u64, len: u64) -> Vec<(usize, u64, Vec<StripePiece>)> {
        let mut per_member: Vec<Vec<StripePiece>> = vec![Vec::new(); self.members.len()];
        // paragon-lint: allow(P1) — split() yields member < members.len() by
        // stripe arithmetic, and per_member is sized to members.len()
        for p in self.map.split(offset, len) {
            per_member[p.member].push(p);
        }
        let mut runs = Vec::new();
        for (member, mut ps) in per_member.into_iter().enumerate() {
            if ps.is_empty() {
                continue;
            }
            ps.sort_by_key(|p| p.offset);
            let mut current: Vec<StripePiece> = Vec::new();
            for p in ps {
                match current.last() {
                    Some(last) if last.offset + last.len == p.offset => current.push(p),
                    Some(_) => {
                        let start = current[0].offset;
                        runs.push((member, start, std::mem::take(&mut current)));
                        current.push(p);
                    }
                    None => current.push(p),
                }
            }
            let start = current[0].offset;
            runs.push((member, start, current));
        }
        runs
    }

    /// Read a logical extent; completes when every member run completes.
    /// Fails only under fault injection; a dead member is transparently
    /// reconstructed when the array has parity.
    pub async fn read(&self, offset: u64, len: u32) -> Result<Bytes, DiskError> {
        self.read_req(offset, len, 0).await
    }

    /// [`RaidArray::read`] under flight-recorder request context `req`.
    pub async fn read_req(&self, offset: u64, len: u32, req: ReqId) -> Result<Bytes, DiskError> {
        let runs = self.runs(offset, len as u64);
        let mut handles = Vec::with_capacity(runs.len());
        for (member, start, pieces) in runs {
            let this = self.clone();
            let rlen: u64 = pieces.iter().map(|p| p.len).sum();
            handles.push(self.sim.spawn_named("raid-read-run", async move {
                this.read_run(member, start, rlen as u32, req).await
            }));
        }
        let mut first_err = None;
        for h in handles {
            // Always join every leg (so concurrent member service finishes
            // deterministically) before reporting the first failure.
            if let Err(e) = h.await {
                first_err = first_err.or(Some(e));
            }
        }
        match first_err {
            Some(e) => Err(e),
            // Every member run has been charged; the bytes come out of the
            // logical store in one (page-aligned: zero-copy) view.
            None => Ok(self.logical.borrow().read(offset, len as usize)),
        }
    }

    /// One member run: direct service, or parity reconstruction when the
    /// member is dead. Timing only — payload comes from the logical store.
    async fn read_run(
        &self,
        member: usize,
        start: u64,
        rlen: u32,
        req: ReqId,
    ) -> Result<(), DiskError> {
        match self.member(member).read_timing_req(start, rlen, req).await {
            Ok(()) => Ok(()),
            Err(DiskError::Dead) => self.reconstruct(member, start, rlen, req).await,
            Err(e) => Err(e),
        }
    }

    /// Rebuild `[start, start+rlen)` of dead member `dead` by XOR-ing the
    /// same member range of every surviving data member with the parity
    /// member. Costs `width` extra member reads — the degraded mode's
    /// measurable overhead.
    async fn reconstruct(
        &self,
        dead: usize,
        start: u64,
        rlen: u32,
        req: ReqId,
    ) -> Result<(), DiskError> {
        let Some(parity) = &self.parity else {
            // No redundancy: the member's death is unrecoverable.
            return Err(DiskError::Dead);
        };
        let mut handles = Vec::with_capacity(self.members.len());
        for (m, disk) in self.members.iter().enumerate() {
            if m == dead {
                continue;
            }
            let d = disk.clone();
            handles.push(self.sim.spawn_named("raid-reconstruct-leg", async move {
                d.read_timing_req(start, rlen, req).await
            }));
        }
        let p = parity.clone();
        handles.push(self.sim.spawn_named("raid-reconstruct-leg", async move {
            p.read_timing_req(start, rlen, req).await
        }));
        let mut first_err = None;
        for h in handles {
            if let Err(e) = h.await {
                first_err = first_err.or(Some(e));
            }
        }
        if let Some(e) = first_err {
            // A second failure (or a transient on a survivor) defeats
            // single-parity reconstruction; surface it for retry.
            return Err(e);
        }
        self.sim.emit(|| {
            ev(
                self.member_lane(dead),
                EventKind::RaidReconstruct,
                req,
                start,
                rlen as u64,
            )
        });
        let mut st = self.rstats.borrow_mut();
        st.reconstructed_reads += 1;
        st.reconstructed_bytes += rlen as u64;
        Ok(())
    }

    /// Write a logical extent; completes when every member run (and, with
    /// parity, every parity read-modify-write) completes.
    pub async fn write(&self, offset: u64, data: Bytes) -> Result<(), DiskError> {
        self.write_req(offset, data, 0).await
    }

    /// [`RaidArray::write`] under flight-recorder request context `req`.
    pub async fn write_req(&self, offset: u64, data: Bytes, req: ReqId) -> Result<(), DiskError> {
        let runs = self.runs(offset, data.len() as u64);
        let Some(parity) = self.parity.clone() else {
            // No parity: plain concurrent member writes (timing only; the
            // payload lands in the logical store once the members finish).
            let mut handles = Vec::with_capacity(runs.len());
            for (member, start, pieces) in runs {
                let disk = self.member(member).clone();
                let rlen: u64 = pieces.iter().map(|p| p.len).sum();
                handles.push(self.sim.spawn_named("raid-write-run", async move {
                    disk.write_timing_req(start, rlen as u32, req).await
                }));
            }
            let mut first_err = None;
            for h in handles {
                if let Err(e) = h.await {
                    first_err = first_err.or(Some(e));
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => {
                    self.logical.borrow_mut().write(offset, &data);
                    Ok(())
                }
            };
        };
        // Parity path: serialize whole-write RMWs. Runs of one logical
        // write may share parity ranges (one stripe row spans every
        // member at the same member offset), so they apply sequentially
        // under the lock.
        let _guard = self.parity_lock.acquire().await;
        for (member, start, pieces) in runs {
            let rlen: u64 = pieces.iter().map(|p| p.len).sum();
            self.write_run_with_parity(&parity, member, start, rlen as u32, req)
                .await?;
        }
        self.logical.borrow_mut().write(offset, &data);
        Ok(())
    }

    /// Read-modify-write one member run under parity:
    /// `parity' = parity ⊕ old_data ⊕ new_data`. A dead data member gets
    /// its old contents reconstructed (so parity stays exact) and its
    /// device write skipped; a dead parity member degrades to a plain
    /// data write.
    async fn write_run_with_parity(
        &self,
        parity: &Disk,
        member: usize,
        start: u64,
        rlen: u32,
        req: ReqId,
    ) -> Result<(), DiskError> {
        let old_parity_alive = match parity.read_timing_req(start, rlen, req).await {
            Ok(()) => true,
            Err(DiskError::Dead) => false,
            Err(e) => return Err(e),
        };
        if !old_parity_alive {
            // Parity member is dead: no redundancy to maintain.
            return self.member(member).write_timing_req(start, rlen, req).await;
        }
        let member_alive = match self.member(member).read_timing_req(start, rlen, req).await {
            Ok(()) => true,
            Err(DiskError::Dead) => {
                self.reconstruct(member, start, rlen, req).await?;
                false
            }
            Err(e) => return Err(e),
        };
        self.rstats.borrow_mut().parity_rmws += 1;
        let p = parity.clone();
        let parity_write = self.sim.spawn_named("raid-parity-write", async move {
            p.write_timing_req(start, rlen, req).await
        });
        let data_write = member_alive.then(|| {
            let d = self.member(member).clone();
            self.sim.spawn_named("raid-write-run", async move {
                d.write_timing_req(start, rlen, req).await
            })
        });
        let mut first_err = parity_write.await.err();
        if let Some(h) = data_write {
            if let Err(e) = h.await {
                first_err = first_err.or(Some(e));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Aggregate member stats (sums; max for queue depth), parity member
    /// included when present.
    pub fn stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for m in self.members.iter().chain(self.parity.iter()) {
            let s = m.stats();
            total.requests += s.requests;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.busy += s.busy;
            total.sequential_hits += s.sequential_hits;
            total.near_seeks += s.near_seeks;
            total.far_seeks += s.far_seeks;
            total.max_queue_depth = total.max_queue_depth.max(s.max_queue_depth);
            total.faulted += s.faulted;
        }
        total
    }

    /// Array-level counters (reconstruction and parity maintenance).
    pub fn raid_stats(&self) -> RaidStats {
        self.rstats.borrow().clone()
    }

    /// Per-spindle counter snapshots, data members first and the parity
    /// member (when present) last — the per-RAID-member busy-time view
    /// the telemetry layer reports.
    pub fn member_stats(&self) -> Vec<DiskStats> {
        self.members
            .iter()
            .chain(self.parity.iter())
            .map(|d| d.stats())
            .collect()
    }

    /// Live queue-depth cells, one per spindle in [`RaidArray::member_stats`]
    /// order; telemetry gauges sum or sample them while the simulation runs.
    pub fn member_queue_cells(&self) -> Vec<Rc<Cell<usize>>> {
        self.members
            .iter()
            .chain(self.parity.iter())
            .map(|d| d.queue_cell())
            .collect()
    }

    /// Slow down one member (failure injection); out-of-range members are
    /// ignored (the plan may target a wider array than this one).
    pub fn set_member_slowdown(&self, member: usize, factor: f64) {
        if let Some(m) = self.members.get(member) {
            m.set_slowdown(factor);
        }
    }

    /// Shared handle to member disk `m`.
    fn member(&self, m: usize) -> &Disk {
        // paragon-lint: allow(P1) — m is produced by the stripe map or member
        // enumeration and is always < members.len() by construction
        &self.members[m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::{SimDuration, SimTime};

    #[test]
    fn split_covers_extent_exactly_once() {
        let map = StripeMap::new(16 * 1024, 4);
        let pieces = map.split(10_000, 100_000);
        // Pieces tile the logical extent in order.
        let mut pos = 0u64;
        for p in &pieces {
            assert_eq!(p.logical_offset, pos);
            assert!(p.len > 0 && p.len <= map.interleave);
            pos += p.len;
        }
        assert_eq!(pos, 100_000);
    }

    #[test]
    fn split_roundtrips_through_to_logical() {
        let map = StripeMap::new(4096, 5);
        for (off, len) in [(0u64, 4096u64), (123, 50_000), (4096 * 5, 4096)] {
            for p in map.split(off, len) {
                assert_eq!(map.to_logical(p.member, p.offset), off + p.logical_offset);
            }
        }
    }

    #[test]
    fn aligned_request_uses_all_members_evenly() {
        let map = StripeMap::new(16 * 1024, 4);
        let pieces = map.split(0, 64 * 1024);
        assert_eq!(pieces.len(), 4);
        let members: Vec<usize> = pieces.iter().map(|p| p.member).collect();
        assert_eq!(members, vec![0, 1, 2, 3]);
        assert!(pieces.iter().all(|p| p.len == 16 * 1024));
    }

    #[test]
    fn raid_read_is_parallel_across_members() {
        let sim = Sim::new(1);
        // 4 members at 1 MB/s each; a 400 KB aligned read puts 100 KB on
        // each member, so it takes ~0.1 s, not 0.4 s.
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            4,
            100 * 1024,
            "r0",
        );
        let r = raid.clone();
        sim.spawn(async move {
            r.read(0, 400 * 1024).await.unwrap();
        });
        let report = sim.run();
        assert_eq!(
            report.end_time,
            SimTime::ZERO + SimDuration::for_bytes(100 * 1024, 1e6)
        );
    }

    #[test]
    fn raid_write_read_roundtrip() {
        let sim = Sim::new(1);
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            3,
            8 * 1024,
            "r1",
        );
        let r = raid.clone();
        let h = sim.spawn(async move {
            let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 256) as u8).collect();
            let payload = Bytes::from(payload);
            r.write(5_000, payload.clone()).await.unwrap();
            let back = r.read(5_000, 100_000).await.unwrap();
            back == payload
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn degraded_member_slows_whole_array() {
        let sim = Sim::new(1);
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            4,
            100 * 1024,
            "r2",
        );
        raid.set_member_slowdown(2, 5.0);
        let r = raid.clone();
        sim.spawn(async move {
            r.read(0, 400 * 1024).await.unwrap();
        });
        let report = sim.run();
        // The slow member gates completion: 100 KB at 1 MB/s × 5.
        assert_eq!(
            report.end_time,
            SimTime::ZERO + SimDuration::from_millis(512)
        );
    }

    fn parity_array(sim: &Sim, width: usize) -> RaidArray {
        let raid = RaidArray::new_with_parity(
            sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            width,
            8 * 1024,
            true,
            "rp",
        );
        raid.set_tracks(0);
        raid
    }

    fn payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i * 13 % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn parity_reconstructs_a_dead_member_exactly() {
        let sim = Sim::new(1);
        let raid = parity_array(&sim, 3);
        let data = payload(100_000);
        let r = raid.clone();
        let d2 = data.clone();
        let faults = sim.faults();
        let h = sim.spawn(async move {
            r.write(3_000, d2.clone()).await.unwrap();
            // Kill data member 1 after the data is down, then read back.
            faults.kill_disk(1);
            faults.arm();
            let back = r.read(3_000, 100_000).await.unwrap();
            back == d2
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
        let rs = raid.raid_stats();
        assert!(rs.reconstructed_reads > 0, "{rs:?}");
        assert!(rs.parity_rmws > 0, "{rs:?}");
    }

    #[test]
    fn writes_through_a_dead_member_keep_parity_exact() {
        let sim = Sim::new(1);
        let raid = parity_array(&sim, 3);
        let before = payload(60_000);
        let after = Bytes::from(vec![0x5au8; 60_000]);
        let r = raid.clone();
        let (b2, a2) = (before.clone(), after.clone());
        let faults = sim.faults();
        let h = sim.spawn(async move {
            r.write(0, b2).await.unwrap();
            faults.kill_disk(0);
            faults.arm();
            // Overwrite while member 0 is dead: its share lands only in
            // parity, and reads must still return the new contents.
            r.write(0, a2.clone()).await.unwrap();
            let back = r.read(0, 60_000).await.unwrap();
            back == a2
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn reconstruction_costs_extra_member_reads() {
        let sim = Sim::new(1);
        let raid = parity_array(&sim, 4);
        let r = raid.clone();
        let faults = sim.faults();
        sim.spawn(async move {
            r.write(0, payload(400 * 1024)).await.unwrap();
            let healthy = r.stats().requests;
            let healthy_reads = r.stats().bytes_read;
            r.read(0, 400 * 1024).await.unwrap();
            let healthy_cost = r.stats().requests - healthy;
            let healthy_bytes = r.stats().bytes_read - healthy_reads;
            faults.kill_disk(2);
            faults.arm();
            let base = r.stats().requests;
            let base_bytes = r.stats().bytes_read;
            r.read(0, 400 * 1024).await.unwrap();
            let degraded_cost = r.stats().requests - base;
            let degraded_bytes = r.stats().bytes_read - base_bytes;
            assert!(
                degraded_cost > healthy_cost && degraded_bytes > healthy_bytes,
                "degraded read must cost more: {healthy_cost}/{degraded_cost} reqs, \
                 {healthy_bytes}/{degraded_bytes} bytes"
            );
        });
        sim.run();
    }

    #[test]
    fn dead_member_without_parity_is_unrecoverable() {
        let sim = Sim::new(1);
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e6),
            SchedPolicy::Fifo,
            3,
            8 * 1024,
            "r3",
        );
        raid.set_tracks(0);
        let r = raid.clone();
        let faults = sim.faults();
        let h = sim.spawn(async move {
            r.write(0, payload(50_000)).await.unwrap();
            faults.kill_disk(1);
            faults.arm();
            r.read(0, 50_000).await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Err(DiskError::Dead)));
    }

    #[test]
    fn concurrent_parity_writes_stay_consistent() {
        // Two tasks write disjoint halves of the same stripe rows at the
        // same virtual time; the parity lock must serialize the RMWs so a
        // post-kill reconstruction still sees exact parity.
        let sim = Sim::new(1);
        let raid = parity_array(&sim, 2);
        let (a, b) = (payload(32 * 1024), Bytes::from(vec![9u8; 32 * 1024]));
        for (off, data) in [(0u64, a.clone()), (32 * 1024, b.clone())] {
            let r = raid.clone();
            sim.spawn(async move {
                r.write(off, data).await.unwrap();
            });
        }
        sim.run();
        let faults = sim.faults();
        faults.kill_disk(0);
        faults.arm();
        let r = raid.clone();
        let h = sim.spawn(async move {
            let x = r.read(0, 32 * 1024).await.unwrap();
            let y = r.read(32 * 1024, 32 * 1024).await.unwrap();
            (x, y)
        });
        sim.run();
        let (x, y) = h.try_take().unwrap();
        assert_eq!(x, a);
        assert_eq!(y, b);
    }
}
