//! Randomized tests: the disk and RAID layers preserve data under
//! arbitrary operation mixes, and the RAID stripe map is a bijection.
//! Cases come from the in-repo [`Rng`]; `heavy-tests` multiplies the
//! count.

use bytes::Bytes;

use paragon_disk::{Disk, DiskParams, RaidArray, SchedPolicy, StripeMap};
use paragon_sim::{Rng, Sim};

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

#[derive(Debug, Clone)]
struct Op {
    offset: u64,
    len: usize,
    fill: u8,
}

fn ops(rng: &mut Rng) -> Vec<Op> {
    (0..rng.range_usize(1..10))
        .map(|_| Op {
            offset: rng.range_u64(0..300_000),
            len: rng.range_usize(1..50_000),
            fill: rng.next_u32() as u8,
        })
        .collect()
}

/// Sequential write script then read-back equals a flat model, on a
/// raw disk under both scheduling policies.
#[test]
fn disk_preserves_data() {
    let mut rng = Rng::seed_from_u64(0xd15c);
    for _ in 0..cases(48, 384) {
        let script = ops(&mut rng);
        let elevator = rng.gen_bool(0.5);
        let sim = Sim::new(5);
        let policy = if elevator {
            SchedPolicy::Elevator
        } else {
            SchedPolicy::Fifo
        };
        let disk = Disk::new(&sim, DiskParams::scsi_1995(), policy, "prop");
        let d = disk.clone();
        let h = sim.spawn(async move {
            let mut model: Vec<u8> = Vec::new();
            for op in &script {
                let end = op.offset as usize + op.len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[op.offset as usize..end].fill(op.fill);
                d.write(op.offset, Bytes::from(vec![op.fill; op.len]))
                    .await
                    .unwrap();
            }
            let back = d.read(0, model.len() as u32).await.unwrap();
            back[..] == model[..]
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }
}

/// Same, through a RAID array (which splits every request over
/// members and reassembles).
#[test]
fn raid_preserves_data() {
    let mut rng = Rng::seed_from_u64(0x4a1d);
    for _ in 0..cases(48, 384) {
        let script = ops(&mut rng);
        let width = rng.range_usize(1..6);
        let interleave = rng.range_u64(1..40_000);
        let parity = rng.gen_bool(0.5);
        let sim = Sim::new(6);
        let raid = RaidArray::new_with_parity(
            &sim,
            DiskParams::ideal(1e9),
            SchedPolicy::Fifo,
            width,
            interleave,
            parity,
            "prop",
        );
        let r = raid.clone();
        let h = sim.spawn(async move {
            let mut model: Vec<u8> = Vec::new();
            for op in &script {
                let end = op.offset as usize + op.len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[op.offset as usize..end].fill(op.fill);
                r.write(op.offset, Bytes::from(vec![op.fill; op.len]))
                    .await
                    .unwrap();
            }
            let back = r.read(0, model.len() as u32).await.unwrap();
            back[..] == model[..]
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }
}

/// The stripe map is a bijection: split pieces tile the extent, map
/// to disjoint member ranges, and invert through `to_logical`.
#[test]
fn stripe_map_bijection() {
    let mut rng = Rng::seed_from_u64(0xb17e);
    for _ in 0..cases(256, 4096) {
        let interleave = rng.range_u64(1..100_000);
        let width = rng.range_usize(1..9);
        let offset = rng.range_u64(0..1 << 30);
        let len = rng.range_u64(1..1 << 20);
        let map = StripeMap::new(interleave, width);
        let pieces = map.split(offset, len);
        let mut pos = 0u64;
        for p in &pieces {
            assert_eq!(p.logical_offset, pos);
            pos += p.len;
            assert!(p.member < width);
            // First and last byte of the piece invert correctly.
            assert_eq!(
                map.to_logical(p.member, p.offset),
                offset + p.logical_offset
            );
            assert_eq!(
                map.to_logical(p.member, p.offset + p.len - 1),
                offset + p.logical_offset + p.len - 1
            );
        }
        assert_eq!(pos, len);
    }
}
