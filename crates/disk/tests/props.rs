//! Property tests: the disk and RAID layers preserve data under
//! arbitrary concurrent operation mixes, and the RAID stripe map is a
//! bijection.

use bytes::Bytes;
use proptest::prelude::*;

use paragon_disk::{Disk, DiskParams, RaidArray, SchedPolicy, StripeMap};
use paragon_sim::Sim;

#[derive(Debug, Clone)]
struct Op {
    offset: u64,
    len: usize,
    fill: u8,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u64..300_000, 1usize..50_000, 0u8..=255).prop_map(|(offset, len, fill)| Op {
            offset,
            len,
            fill,
        }),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential write script then read-back equals a flat model, on a
    /// raw disk under both scheduling policies.
    #[test]
    fn disk_preserves_data(script in ops(), elevator in any::<bool>()) {
        let sim = Sim::new(5);
        let policy = if elevator { SchedPolicy::Elevator } else { SchedPolicy::Fifo };
        let disk = Disk::new(&sim, DiskParams::scsi_1995(), policy, "prop");
        let d = disk.clone();
        let script2 = script.clone();
        let h = sim.spawn(async move {
            let mut model: Vec<u8> = Vec::new();
            for op in &script2 {
                let end = op.offset as usize + op.len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[op.offset as usize..end].fill(op.fill);
                d.write(op.offset, Bytes::from(vec![op.fill; op.len])).await;
            }
            let back = d.read(0, model.len() as u32).await;
            back[..] == model[..]
        });
        sim.run();
        prop_assert_eq!(h.try_take(), Some(true));
    }

    /// Same, through a RAID array (which splits every request over
    /// members and reassembles).
    #[test]
    fn raid_preserves_data(
        script in ops(),
        width in 1usize..6,
        interleave in 1u64..40_000,
    ) {
        let sim = Sim::new(6);
        let raid = RaidArray::new(
            &sim, DiskParams::ideal(1e9), SchedPolicy::Fifo, width, interleave, "prop",
        );
        let r = raid.clone();
        let script2 = script.clone();
        let h = sim.spawn(async move {
            let mut model: Vec<u8> = Vec::new();
            for op in &script2 {
                let end = op.offset as usize + op.len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[op.offset as usize..end].fill(op.fill);
                r.write(op.offset, Bytes::from(vec![op.fill; op.len])).await;
            }
            let back = r.read(0, model.len() as u32).await;
            back[..] == model[..]
        });
        sim.run();
        prop_assert_eq!(h.try_take(), Some(true));
    }

    /// The stripe map is a bijection: split pieces tile the extent, map
    /// to disjoint member ranges, and invert through `to_logical`.
    #[test]
    fn stripe_map_bijection(
        interleave in 1u64..100_000,
        width in 1usize..9,
        offset in 0u64..1 << 30,
        len in 1u64..1 << 20,
    ) {
        let map = StripeMap::new(interleave, width);
        let pieces = map.split(offset, len);
        let mut pos = 0u64;
        for p in &pieces {
            prop_assert_eq!(p.logical_offset, pos);
            pos += p.len;
            prop_assert!(p.member < width);
            // First and last byte of the piece invert correctly.
            prop_assert_eq!(map.to_logical(p.member, p.offset), offset + p.logical_offset);
            prop_assert_eq!(
                map.to_logical(p.member, p.offset + p.len - 1),
                offset + p.logical_offset + p.len - 1
            );
        }
        prop_assert_eq!(pos, len);
    }
}
