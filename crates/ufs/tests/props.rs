//! Property tests for the UFS building blocks: the extent allocator
//! never double-allocates, the cache never exceeds capacity or loses
//! dirty data, and the file system round-trips arbitrary write/read
//! scripts byte-for-byte.

use bytes::Bytes;
use proptest::prelude::*;

use paragon_disk::{DiskParams, RaidArray, SchedPolicy};
use paragon_sim::Sim;
use paragon_ufs::{BlockCache, BlockKey, Extent, ExtentAllocator, InodeId, Ufs, UfsParams};

// ---------------------------------------------------------------- allocator

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..50).prop_map(AllocOp::Alloc),
            (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..80,
    )
}

proptest! {
    #[test]
    fn allocator_never_overlaps_and_conserves(ops in alloc_ops()) {
        let capacity = 500u64;
        let mut a = ExtentAllocator::new(capacity);
        let mut live: Vec<Extent> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(n) => {
                    if let Ok(extents) = a.alloc(n) {
                        prop_assert_eq!(extents.iter().map(|e| e.len).sum::<u64>(), n);
                        for e in &extents {
                            prop_assert!(e.end() <= capacity);
                            for other in &live {
                                prop_assert!(!e.overlaps(other), "{e} overlaps {other}");
                            }
                        }
                        live.extend(extents);
                    }
                }
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let e = live.swap_remove(i % live.len());
                        a.free(e);
                    }
                }
            }
            let live_blocks: u64 = live.iter().map(|e| e.len).sum();
            prop_assert_eq!(a.free_blocks() + live_blocks, capacity);
        }
    }
}

// -------------------------------------------------------------------- cache

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    InsertClean(u64),
    InsertDirty(u64),
    TakeDirty,
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32).prop_map(CacheOp::Get),
            (0u64..32).prop_map(CacheOp::InsertClean),
            (0u64..32).prop_map(CacheOp::InsertDirty),
            Just(CacheOp::TakeDirty),
        ],
        1..120,
    )
}

proptest! {
    /// The cache never exceeds capacity, and every dirty block inserted
    /// is eventually surfaced (via eviction or take_dirty) exactly once.
    #[test]
    fn cache_bounds_and_dirty_conservation(ops in cache_ops(), cap in 1usize..8) {
        let mut c = BlockCache::new(cap);
        let mut dirty_in = 0u64;
        let mut dirty_out = 0u64;
        let key = |b: u64| BlockKey { inode: InodeId(0), block: b };
        let mut dirty_now: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                CacheOp::Get(b) => { c.get(key(b)); }
                CacheOp::InsertClean(b) => {
                    if let Some(ev) = c.insert_clean(key(b), Bytes::from_static(b"x")) {
                        if ev.dirty { dirty_out += 1; dirty_now.remove(&ev.key.block); }
                    }
                }
                CacheOp::InsertDirty(b) => {
                    if dirty_now.insert(b) {
                        dirty_in += 1;
                    }
                    if let Some(ev) = c.insert_dirty(key(b), Bytes::from_static(b"y")) {
                        if ev.dirty { dirty_out += 1; dirty_now.remove(&ev.key.block); }
                    }
                }
                CacheOp::TakeDirty => {
                    let taken = c.take_dirty();
                    dirty_out += taken.len() as u64;
                    for (k, _) in taken { dirty_now.remove(&k.block); }
                }
            }
            prop_assert!(c.len() <= cap);
        }
        dirty_out += c.take_dirty().len() as u64;
        prop_assert_eq!(dirty_in, dirty_out, "dirty data lost or duplicated");
    }
}

// ------------------------------------------------------------------- the fs

#[derive(Debug, Clone)]
struct WriteOp {
    offset: u64,
    len: usize,
    fill: u8,
}

fn write_script() -> impl Strategy<Value = Vec<WriteOp>> {
    prop::collection::vec(
        (0u64..200_000, 1usize..40_000, 0u8..255).prop_map(|(offset, len, fill)| WriteOp {
            offset,
            len,
            fill,
        }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary overlapping writes followed by reads reproduce exactly
    /// what a flat in-memory model says, on both read paths.
    #[test]
    fn fs_matches_flat_model(script in write_script()) {
        let sim = Sim::new(3);
        let raid = RaidArray::new(&sim, DiskParams::ideal(1e9), SchedPolicy::Fifo, 3, 8192, "p");
        let mut params = UfsParams::paragon();
        params.block_size = 4096;
        params.cache_blocks = 4;
        let fs = Ufs::new(&sim, raid, params);
        let fs2 = fs.clone();
        let script2 = script.clone();
        let h = sim.spawn(async move {
            let id = fs2.create("f").await.unwrap();
            let mut model: Vec<u8> = Vec::new();
            for w in &script2 {
                let end = w.offset as usize + w.len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[w.offset as usize..end].fill(w.fill);
                fs2.write(id, w.offset, Bytes::from(vec![w.fill; w.len]))
                    .await
                    .unwrap();
            }
            let direct = fs2.read_direct(id, 0, model.len() as u32).await.unwrap();
            let cached = fs2.read_cached(id, 0, model.len() as u32).await.unwrap();
            (model, direct, cached)
        });
        sim.run();
        let (model, direct, cached) = h.try_take().expect("script completed");
        prop_assert_eq!(&direct[..], &model[..], "fast path diverged");
        prop_assert_eq!(&cached[..], &model[..], "buffered path diverged");
    }
}
