//! Randomized tests for the UFS building blocks: the extent allocator
//! never double-allocates, the cache never exceeds capacity or loses
//! dirty data, and the file system round-trips arbitrary write/read
//! scripts byte-for-byte. Cases come from the in-repo [`Rng`];
//! `heavy-tests` multiplies the count.

use bytes::Bytes;

use paragon_disk::{DiskParams, RaidArray, SchedPolicy};
use paragon_sim::{Rng, Sim};
use paragon_ufs::{BlockCache, BlockKey, Extent, ExtentAllocator, InodeId, Ufs, UfsParams};

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

// ---------------------------------------------------------------- allocator

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn alloc_ops(rng: &mut Rng) -> Vec<AllocOp> {
    (0..rng.range_usize(1..80))
        .map(|_| {
            if rng.gen_bool(0.5) {
                AllocOp::Alloc(rng.range_u64(1..50))
            } else {
                AllocOp::FreeNth(rng.range_usize(0..64))
            }
        })
        .collect()
}

#[test]
fn allocator_never_overlaps_and_conserves() {
    let mut rng = Rng::seed_from_u64(0xa110);
    for _ in 0..cases(256, 2048) {
        let ops = alloc_ops(&mut rng);
        let capacity = 500u64;
        let mut a = ExtentAllocator::new(capacity);
        let mut live: Vec<Extent> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(n) => {
                    if let Ok(extents) = a.alloc(n) {
                        assert_eq!(extents.iter().map(|e| e.len).sum::<u64>(), n);
                        for e in &extents {
                            assert!(e.end() <= capacity);
                            for other in &live {
                                assert!(!e.overlaps(other), "{e} overlaps {other}");
                            }
                        }
                        live.extend(extents);
                    }
                }
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let e = live.swap_remove(i % live.len());
                        a.free(e);
                    }
                }
            }
            let live_blocks: u64 = live.iter().map(|e| e.len).sum();
            assert_eq!(a.free_blocks() + live_blocks, capacity);
        }
    }
}

// -------------------------------------------------------------------- cache

#[derive(Debug, Clone)]
enum CacheOp {
    Get(u64),
    InsertClean(u64),
    InsertDirty(u64),
    TakeDirty,
}

fn cache_ops(rng: &mut Rng) -> Vec<CacheOp> {
    (0..rng.range_usize(1..120))
        .map(|_| match rng.range_u64(0..4) {
            0 => CacheOp::Get(rng.range_u64(0..32)),
            1 => CacheOp::InsertClean(rng.range_u64(0..32)),
            2 => CacheOp::InsertDirty(rng.range_u64(0..32)),
            _ => CacheOp::TakeDirty,
        })
        .collect()
}

/// The cache never exceeds capacity, and every dirty block inserted
/// is eventually surfaced (via eviction or take_dirty) exactly once.
#[test]
fn cache_bounds_and_dirty_conservation() {
    let mut rng = Rng::seed_from_u64(0xcac4e);
    for _ in 0..cases(256, 2048) {
        let ops = cache_ops(&mut rng);
        let cap = rng.range_usize(1..8);
        let mut c = BlockCache::new(cap);
        let mut dirty_in = 0u64;
        let mut dirty_out = 0u64;
        let key = |b: u64| BlockKey {
            inode: InodeId(0),
            block: b,
        };
        let mut dirty_now: std::collections::HashSet<u64> = Default::default();
        for op in ops {
            match op {
                CacheOp::Get(b) => {
                    c.get(key(b));
                }
                CacheOp::InsertClean(b) => {
                    if let Some(ev) = c.insert_clean(key(b), Bytes::from_static(b"x")) {
                        if ev.dirty {
                            dirty_out += 1;
                            dirty_now.remove(&ev.key.block);
                        }
                    }
                }
                CacheOp::InsertDirty(b) => {
                    if dirty_now.insert(b) {
                        dirty_in += 1;
                    }
                    if let Some(ev) = c.insert_dirty(key(b), Bytes::from_static(b"y")) {
                        if ev.dirty {
                            dirty_out += 1;
                            dirty_now.remove(&ev.key.block);
                        }
                    }
                }
                CacheOp::TakeDirty => {
                    let taken = c.take_dirty();
                    dirty_out += taken.len() as u64;
                    for (k, _) in taken {
                        dirty_now.remove(&k.block);
                    }
                }
            }
            assert!(c.len() <= cap);
        }
        dirty_out += c.take_dirty().len() as u64;
        assert_eq!(dirty_in, dirty_out, "dirty data lost or duplicated");
    }
}

// ------------------------------------------------------------------- the fs

#[derive(Debug, Clone)]
struct WriteOp {
    offset: u64,
    len: usize,
    fill: u8,
}

fn write_script(rng: &mut Rng) -> Vec<WriteOp> {
    (0..rng.range_usize(1..12))
        .map(|_| WriteOp {
            offset: rng.range_u64(0..200_000),
            len: rng.range_usize(1..40_000),
            fill: rng.next_u32() as u8,
        })
        .collect()
}

/// Arbitrary overlapping writes followed by reads reproduce exactly
/// what a flat in-memory model says, on both read paths.
#[test]
fn fs_matches_flat_model() {
    let mut rng = Rng::seed_from_u64(0xf5f5);
    for _ in 0..cases(32, 256) {
        let script = write_script(&mut rng);
        let sim = Sim::new(3);
        let raid = RaidArray::new(
            &sim,
            DiskParams::ideal(1e9),
            SchedPolicy::Fifo,
            3,
            8192,
            "p",
        );
        let mut params = UfsParams::paragon();
        params.block_size = 4096;
        params.cache_blocks = 4;
        let fs = Ufs::new(&sim, raid, params);
        let fs2 = fs.clone();
        let h = sim.spawn(async move {
            let id = fs2.create("f").await.unwrap();
            let mut model: Vec<u8> = Vec::new();
            for w in &script {
                let end = w.offset as usize + w.len;
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[w.offset as usize..end].fill(w.fill);
                fs2.write(id, w.offset, Bytes::from(vec![w.fill; w.len]))
                    .await
                    .unwrap();
            }
            let direct = fs2.read_direct(id, 0, model.len() as u32).await.unwrap();
            let cached = fs2.read_cached(id, 0, model.len() as u32).await.unwrap();
            (model, direct, cached)
        });
        sim.run();
        let (model, direct, cached) = h.try_take().expect("script completed");
        assert_eq!(&direct[..], &model[..], "fast path diverged");
        assert_eq!(&cached[..], &model[..], "buffered path diverged");
    }
}
