//! # paragon-ufs — the per-I/O-node Unix file system
//!
//! Each Paragon I/O node ran a regular Unix File System on its RAID array;
//! the PFS stripes one parallel file over many of these. This crate is that
//! building block: an extent allocator, an inode table with a coalescing
//! block map, an LRU buffer cache, and the two read paths the PFS server
//! selects between — the **Fast Path** ([`Ufs::read_direct`], cache
//! bypassed, data moved disk → caller directly, contiguous blocks merged
//! into single device requests) and the buffered path
//! ([`Ufs::read_cached`]).
//!
//! ```
//! use paragon_sim::Sim;
//! use paragon_disk::{DiskParams, RaidArray, SchedPolicy};
//! use paragon_ufs::{Ufs, UfsParams};
//! use bytes::Bytes;
//!
//! let sim = Sim::new(7);
//! let raid = RaidArray::new(&sim, DiskParams::ideal(1e7), SchedPolicy::Fifo,
//!                           4, 16 * 1024, "doc");
//! let fs = Ufs::new(&sim, raid, UfsParams::paragon());
//! let fs2 = fs.clone();
//! let h = sim.spawn(async move {
//!     let id = fs2.create("/pfs/stripe.0").await.unwrap();
//!     fs2.write(id, 0, Bytes::from(vec![42u8; 128 * 1024])).await.unwrap();
//!     fs2.read_direct(id, 0, 64 * 1024).await.unwrap().len()
//! });
//! sim.run();
//! assert_eq!(h.try_take(), Some(64 * 1024));
//! ```

// Robustness: the I/O path under the PFS servers must surface failures
// as `UfsError` values, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod alloc;
mod cache;
mod fs;
mod inode;

pub use alloc::{Extent, ExtentAllocator, NoSpace};
pub use cache::{BlockCache, BlockKey, CacheStats, Evicted};
pub use fs::{Ufs, UfsError, UfsParams, UfsStats};
pub use inode::{DiskRun, Inode, InodeId, InodeTable};
