//! Inode table: file identity, size, and the block map.
//!
//! Files are extent-mapped: the inode holds an ordered list of disk extents
//! whose total length covers the file, block-granular. `map_blocks` turns a
//! run of file blocks into as few disk runs as the layout allows — the
//! lookup that both the Fast Path and the buffer cache share.

use std::collections::BTreeMap;

use crate::alloc::Extent;

/// Identifier of a file within one UFS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

/// A contiguous run of *disk* blocks backing a run of *file* blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRun {
    /// First disk block.
    pub disk_block: u64,
    /// First file block this run backs.
    pub file_block: u64,
    /// Length in blocks.
    pub len: u64,
}

/// One file's metadata.
#[derive(Debug, Clone)]
pub struct Inode {
    /// This inode's id.
    pub id: InodeId,
    /// File size in bytes (may end mid-block).
    pub size: u64,
    /// Disk extents, in file order.
    pub extents: Vec<Extent>,
}

impl Inode {
    /// Blocks currently mapped.
    pub fn mapped_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Append a disk extent to the end of the file's block map, merging
    /// with the previous extent when they are disk-adjacent.
    pub fn push_extent(&mut self, ext: Extent) {
        if let Some(last) = self.extents.last_mut() {
            if last.end() == ext.start {
                last.len += ext.len;
                return;
            }
        }
        self.extents.push(ext);
    }

    /// Disk block backing `file_block`, or `None` past the mapped range.
    pub fn map_block(&self, file_block: u64) -> Option<u64> {
        let mut base = 0u64;
        for e in &self.extents {
            if file_block < base + e.len {
                return Some(e.start + (file_block - base));
            }
            base += e.len;
        }
        None
    }

    /// Map file blocks `[first, first+len)` to disk runs, coalescing
    /// whenever consecutive file blocks are consecutive on disk. Returns
    /// `None` if any block is unmapped (callers check size first, so a
    /// `None` means the inode's block map is inconsistent with its size).
    pub fn map_blocks(&self, first: u64, len: u64) -> Option<Vec<DiskRun>> {
        assert!(len > 0);
        let mut runs: Vec<DiskRun> = Vec::new();
        for fb in first..first + len {
            let db = self.map_block(fb)?;
            match runs.last_mut() {
                Some(run) if run.disk_block + run.len == db => run.len += 1,
                _ => runs.push(DiskRun {
                    disk_block: db,
                    file_block: fb,
                    len: 1,
                }),
            }
        }
        Some(runs)
    }
}

/// The inode table of one UFS instance, with a flat name directory.
#[derive(Debug, Default)]
pub struct InodeTable {
    next: u64,
    inodes: BTreeMap<InodeId, Inode>,
    names: BTreeMap<String, InodeId>,
}

impl InodeTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a file. Fails (returns existing id) if the name exists.
    pub fn create(&mut self, name: &str) -> Result<InodeId, InodeId> {
        if let Some(&id) = self.names.get(name) {
            return Err(id);
        }
        let id = InodeId(self.next);
        self.next += 1;
        self.inodes.insert(
            id,
            Inode {
                id,
                size: 0,
                extents: Vec::new(),
            },
        );
        self.names.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Look a file up by name.
    pub fn lookup(&self, name: &str) -> Option<InodeId> {
        self.names.get(name).copied()
    }

    /// Borrow an inode.
    pub fn get(&self, id: InodeId) -> Option<&Inode> {
        self.inodes.get(&id)
    }

    /// Mutably borrow an inode.
    pub fn get_mut(&mut self, id: InodeId) -> Option<&mut Inode> {
        self.inodes.get_mut(&id)
    }

    /// Remove a file, returning its extents for deallocation.
    pub fn remove(&mut self, id: InodeId) -> Option<Inode> {
        let inode = self.inodes.remove(&id)?;
        self.names.retain(|_, v| *v != id);
        Some(inode)
    }

    /// Number of live files.
    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.inodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inode_with(extents: &[(u64, u64)]) -> Inode {
        let mut ino = Inode {
            id: InodeId(0),
            size: 0,
            extents: Vec::new(),
        };
        for &(start, len) in extents {
            ino.push_extent(Extent { start, len });
        }
        ino
    }

    #[test]
    fn push_extent_merges_adjacent() {
        let ino = inode_with(&[(10, 5), (15, 5), (40, 2)]);
        assert_eq!(ino.extents.len(), 2);
        assert_eq!(ino.extents[0], Extent { start: 10, len: 10 });
        assert_eq!(ino.mapped_blocks(), 12);
    }

    #[test]
    fn map_block_walks_extents() {
        let ino = inode_with(&[(100, 3), (50, 2)]);
        assert_eq!(ino.map_block(0), Some(100));
        assert_eq!(ino.map_block(2), Some(102));
        assert_eq!(ino.map_block(3), Some(50));
        assert_eq!(ino.map_block(4), Some(51));
        assert_eq!(ino.map_block(5), None);
    }

    #[test]
    fn map_blocks_coalesces_contiguous_disk_runs() {
        // File blocks 0..5 on disk 100..105 even though built as two extents.
        let ino = inode_with(&[(100, 3), (103, 2)]);
        let runs = ino.map_blocks(0, 5).unwrap();
        assert_eq!(
            runs,
            vec![DiskRun {
                disk_block: 100,
                file_block: 0,
                len: 5
            }]
        );
    }

    #[test]
    fn map_blocks_splits_at_discontinuity() {
        let ino = inode_with(&[(100, 2), (500, 2)]);
        let runs = ino.map_blocks(1, 3).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].disk_block, 101);
        assert_eq!(runs[0].len, 1);
        assert_eq!(runs[1].disk_block, 500);
        assert_eq!(runs[1].file_block, 2);
        assert_eq!(runs[1].len, 2);
    }

    #[test]
    fn table_create_lookup_remove() {
        let mut t = InodeTable::new();
        let a = t.create("/pfs/data").unwrap();
        assert_eq!(t.create("/pfs/data"), Err(a));
        assert_eq!(t.lookup("/pfs/data"), Some(a));
        let b = t.create("/pfs/other").unwrap();
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        t.remove(a).unwrap();
        assert_eq!(t.lookup("/pfs/data"), None);
        assert!(!t.is_empty());
    }
}
