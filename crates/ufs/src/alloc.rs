//! Block-extent allocator for one I/O node's disk partition.
//!
//! First-fit over a sorted free list with eager coalescing on free. The
//! allocator works in whole file-system blocks; contiguity matters because
//! the disk model rewards sequential access (and PFS "block coalescing"
//! merges reads of adjacent disk blocks into one request).

use std::fmt;

/// A contiguous run of file-system blocks on the local disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// First block number.
    pub start: u64,
    /// Length in blocks; never zero.
    pub len: u64,
}

impl Extent {
    /// One past the last block.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True if the two extents share any block.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

/// Out of disk space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSpace {
    /// Blocks requested.
    pub wanted: u64,
    /// Largest free run available.
    pub largest_free: u64,
}

/// First-fit extent allocator over `capacity` blocks.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    capacity: u64,
    /// Free runs, sorted by start, non-adjacent (always coalesced).
    free: Vec<Extent>,
}

impl ExtentAllocator {
    /// A fresh allocator with every block free.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "zero-capacity disk");
        ExtentAllocator {
            capacity,
            free: vec![Extent {
                start: 0,
                len: capacity,
            }],
        }
    }

    /// Total block capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.free.iter().map(|e| e.len).sum()
    }

    /// Largest single free run (what a contiguous allocation can get).
    pub fn largest_free_run(&self) -> u64 {
        self.free.iter().map(|e| e.len).max().unwrap_or(0)
    }

    /// Number of free fragments (fragmentation diagnostic).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// Allocate `n` blocks as few extents as possible (first-fit; a single
    /// extent when any free run is big enough, otherwise the request is
    /// split across runs in address order).
    pub fn alloc(&mut self, n: u64) -> Result<Vec<Extent>, NoSpace> {
        assert!(n > 0, "zero-length allocation");
        if self.free_blocks() < n {
            return Err(NoSpace {
                wanted: n,
                largest_free: self.largest_free_run(),
            });
        }
        // Prefer one contiguous run: first fit.
        if let Some(idx) = self.free.iter().position(|e| e.len >= n) {
            // paragon-lint: allow(P1) — idx comes from position() on this same vec
            let run = &mut self.free[idx];
            let got = Extent {
                start: run.start,
                len: n,
            };
            if run.len == n {
                self.free.remove(idx);
            } else {
                run.start += n;
                run.len -= n;
            }
            return Ok(vec![got]);
        }
        // Fragmented path: take whole runs in address order until satisfied.
        let mut out = Vec::new();
        let mut need = n;
        while need > 0 {
            let mut run = self.free.remove(0);
            if run.len > need {
                out.push(Extent {
                    start: run.start,
                    len: need,
                });
                run.start += need;
                run.len -= need;
                self.free.insert(0, run);
                need = 0;
            } else {
                need -= run.len;
                out.push(run);
            }
        }
        Ok(out)
    }

    /// Return an extent to the free pool, coalescing with neighbours.
    ///
    /// Panics on double-free or out-of-range extents — both are file-system
    /// bugs we want loudly.
    pub fn free(&mut self, ext: Extent) {
        assert!(ext.len > 0 && ext.end() <= self.capacity, "bad free {ext}");
        let pos = self.free.partition_point(|e| e.start < ext.start);
        // paragon-lint: allow(P1) — pos comes from partition_point on this
        // same vec and every neighbour access is guarded by the explicit
        // pos bounds checks above it
        if pos > 0 {
            assert!(
                self.free[pos - 1].end() <= ext.start,
                "double free: {ext} overlaps {}",
                self.free[pos - 1]
            );
        }
        if pos < self.free.len() {
            assert!(
                ext.end() <= self.free[pos].start,
                "double free: {ext} overlaps {}",
                self.free[pos]
            );
        }
        self.free.insert(pos, ext);
        // Coalesce with right neighbour, then left.
        if pos + 1 < self.free.len() && self.free[pos].end() == self.free[pos + 1].start {
            self.free[pos].len += self.free[pos + 1].len;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].end() == self.free[pos].start {
            self.free[pos - 1].len += self.free[pos].len;
            self.free.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_one_run() {
        let a = ExtentAllocator::new(100);
        assert_eq!(a.free_blocks(), 100);
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.largest_free_run(), 100);
    }

    #[test]
    fn alloc_is_contiguous_when_possible() {
        let mut a = ExtentAllocator::new(100);
        let e = a.alloc(30).unwrap();
        assert_eq!(e, vec![Extent { start: 0, len: 30 }]);
        let e = a.alloc(70).unwrap();
        assert_eq!(e, vec![Extent { start: 30, len: 70 }]);
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn exhaustion_reports_largest_run() {
        let mut a = ExtentAllocator::new(10);
        a.alloc(8).unwrap();
        let err = a.alloc(5).unwrap_err();
        assert_eq!(
            err,
            NoSpace {
                wanted: 5,
                largest_free: 2
            }
        );
    }

    #[test]
    fn fragmented_alloc_spans_runs() {
        let mut a = ExtentAllocator::new(30);
        let e1 = a.alloc(10).unwrap()[0];
        let _e2 = a.alloc(10).unwrap()[0];
        let e3 = a.alloc(10).unwrap()[0];
        a.free(e1);
        a.free(e3);
        // Free runs: [0..10) and [20..30); a 15-block alloc must split.
        let got = a.alloc(15).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got.iter().map(|e| e.len).sum::<u64>(), 15);
        assert!(!got[0].overlaps(&got[1]));
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(30);
        let e1 = a.alloc(10).unwrap()[0];
        let e2 = a.alloc(10).unwrap()[0];
        let e3 = a.alloc(10).unwrap()[0];
        a.free(e1);
        a.free(e3);
        assert_eq!(a.fragments(), 2);
        a.free(e2);
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.largest_free_run(), 30);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = ExtentAllocator::new(10);
        let e = a.alloc(5).unwrap()[0];
        a.free(e);
        a.free(e);
    }
}
