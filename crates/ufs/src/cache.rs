//! LRU buffer cache of file-system blocks.
//!
//! This is the cache that PFS *bypasses* when buffering is disabled (the
//! Fast Path). It is a passive structure: it never touches the disk itself;
//! `insert` reports the evicted victim so the file system can write dirty
//! data back before reuse. Keys are `(inode, file block)`.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::inode::InodeId;

/// Key of one cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockKey {
    pub inode: InodeId,
    pub block: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Bytes,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

/// A block evicted to make room; dirty victims must be written back.
#[derive(Debug, Clone)]
pub struct Evicted {
    pub key: BlockKey,
    pub data: Bytes,
    pub dirty: bool,
}

/// Cache hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; zero when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fixed-capacity LRU block cache.
#[derive(Debug)]
pub struct BlockCache {
    capacity: usize,
    clock: u64,
    map: BTreeMap<BlockKey, Entry>,
    stats: CacheStats,
}

impl BlockCache {
    /// A cache holding at most `capacity` blocks. Zero capacity is legal
    /// and means "cache nothing" (every lookup misses, inserts evict
    /// immediately) — used to model buffering-disabled ablations.
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            clock: 0,
            map: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Maximum resident blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look a block up, refreshing its recency on hit.
    pub fn get(&mut self, key: BlockKey) -> Option<Bytes> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&key) {
            Some(e) => {
                e.stamp = clock;
                self.stats.hits += 1;
                Some(e.data.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without recency update or counter changes (used by tests and
    /// the dirty scan).
    pub fn peek(&self, key: BlockKey) -> Option<&Bytes> {
        self.map.get(&key).map(|e| &e.data)
    }

    /// Insert a clean block (e.g. just read from disk), evicting the LRU
    /// victim if full. Returns the victim so dirty data can be written back.
    pub fn insert_clean(&mut self, key: BlockKey, data: Bytes) -> Option<Evicted> {
        self.insert(key, data, false)
    }

    /// Insert or overwrite a block and mark it dirty (write path).
    pub fn insert_dirty(&mut self, key: BlockKey, data: Bytes) -> Option<Evicted> {
        self.insert(key, data, true)
    }

    fn insert(&mut self, key: BlockKey, data: Bytes, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        if self.capacity == 0 {
            // Degenerate cache: the inserted block itself is the victim.
            return Some(Evicted { key, data, dirty });
        }
        if let Some(e) = self.map.get_mut(&key) {
            e.data = data;
            e.dirty = e.dirty || dirty;
            e.stamp = self.clock;
            return None;
        }
        let victim = if self.map.len() >= self.capacity {
            let vkey = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k);
            vkey.and_then(|k| self.map.remove(&k).map(|e| (k, e)))
                .map(|(vkey, ventry)| {
                    self.stats.evictions += 1;
                    if ventry.dirty {
                        self.stats.writebacks += 1;
                    }
                    Evicted {
                        key: vkey,
                        data: ventry.data,
                        dirty: ventry.dirty,
                    }
                })
        } else {
            None
        };
        self.map.insert(
            key,
            Entry {
                data,
                dirty,
                stamp: self.clock,
            },
        );
        victim
    }

    /// Drain every dirty block (for `sync`); entries stay resident but are
    /// marked clean.
    pub fn take_dirty(&mut self) -> Vec<(BlockKey, Bytes)> {
        let mut out: Vec<(BlockKey, Bytes)> = Vec::new();
        for (k, e) in self.map.iter_mut() {
            if e.dirty {
                e.dirty = false;
                out.push((*k, e.data.clone()));
            }
        }
        // Deterministic order for the simulation.
        out.sort_by_key(|(k, _)| (k.inode, k.block));
        out
    }

    /// Drop one block if resident (write-through coherence). Dirty data is
    /// intentionally discarded: the caller just overwrote the block on disk.
    pub fn purge_block(&mut self, key: BlockKey) {
        self.map.remove(&key);
    }

    /// Drop every block of `inode` (file removal); returns dirty blocks.
    pub fn purge_inode(&mut self, inode: InodeId) -> Vec<(BlockKey, Bytes)> {
        let mut dirty = Vec::new();
        self.map.retain(|k, e| {
            if k.inode == inode {
                if e.dirty {
                    dirty.push((*k, e.data.clone()));
                }
                false
            } else {
                true
            }
        });
        dirty.sort_by_key(|(k, _)| (k.inode, k.block));
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u64) -> BlockKey {
        BlockKey {
            inode: InodeId(1),
            block: b,
        }
    }

    fn block(fill: u8) -> Bytes {
        Bytes::from(vec![fill; 16])
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = BlockCache::new(4);
        assert!(c.get(key(0)).is_none());
        c.insert_clean(key(0), block(7));
        assert_eq!(c.get(key(0)).unwrap(), block(7));
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert!((st.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = BlockCache::new(2);
        c.insert_clean(key(0), block(0));
        c.insert_clean(key(1), block(1));
        c.get(key(0)); // refresh 0; victim should be 1
        let ev = c.insert_clean(key(2), block(2)).unwrap();
        assert_eq!(ev.key, key(1));
        assert!(!ev.dirty);
        assert!(c.peek(key(0)).is_some());
        assert!(c.peek(key(1)).is_none());
    }

    #[test]
    fn dirty_eviction_is_flagged() {
        let mut c = BlockCache::new(1);
        c.insert_dirty(key(0), block(9));
        let ev = c.insert_clean(key(1), block(1)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.data, block(9));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = BlockCache::new(3);
        for i in 0..10 {
            c.insert_clean(key(i), block(i as u8));
            assert!(c.len() <= 3);
        }
        assert_eq!(c.stats().evictions, 7);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c = BlockCache::new(1);
        c.insert_clean(key(0), block(1));
        assert!(c.insert_dirty(key(0), block(2)).is_none());
        assert_eq!(c.peek(key(0)).unwrap(), &block(2));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn take_dirty_cleans_entries() {
        let mut c = BlockCache::new(4);
        c.insert_dirty(key(2), block(2));
        c.insert_dirty(key(1), block(1));
        c.insert_clean(key(3), block(3));
        let dirty = c.take_dirty();
        let blocks: Vec<u64> = dirty.iter().map(|(k, _)| k.block).collect();
        assert_eq!(blocks, vec![1, 2]); // deterministic order
        assert!(c.take_dirty().is_empty());
        assert_eq!(c.len(), 3); // still resident
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = BlockCache::new(0);
        let ev = c.insert_clean(key(0), block(1)).unwrap();
        assert_eq!(ev.key, key(0));
        assert!(c.get(key(0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn purge_inode_returns_its_dirty_blocks() {
        let mut c = BlockCache::new(8);
        c.insert_dirty(key(0), block(0));
        c.insert_clean(key(1), block(1));
        c.insert_dirty(
            BlockKey {
                inode: InodeId(2),
                block: 0,
            },
            block(5),
        );
        let dirty = c.purge_inode(InodeId(1));
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, key(0));
        assert_eq!(c.len(), 1);
    }
}
