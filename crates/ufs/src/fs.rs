//! The per-I/O-node file system.
//!
//! One `Ufs` instance sits on one I/O node's RAID array and provides the
//! two read paths the PFS server chooses between:
//!
//! * [`Ufs::read_direct`] — **Fast Path**: bypass the buffer cache, map the
//!   byte range to disk runs (coalescing file-contiguous blocks that are
//!   also disk-contiguous into single device requests), and move data
//!   disk → caller with no intermediate copy.
//! * [`Ufs::read_cached`] — buffered: per-block LRU cache lookups, misses
//!   filled from disk (with the same run coalescing), plus a charged
//!   memory-copy from cache to the caller's buffer.
//!
//! Writes are write-through (the pre-population path of every experiment);
//! `write_cached` exercises dirty-block bookkeeping for the cache tests.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use paragon_disk::{DiskError, RaidArray};
use paragon_sim::{ReqId, Sim, SimDuration};

use crate::alloc::{ExtentAllocator, NoSpace};
use crate::cache::{BlockCache, BlockKey, CacheStats};
use crate::inode::{DiskRun, InodeId, InodeTable};

/// Configuration of one UFS instance.
#[derive(Debug, Clone)]
pub struct UfsParams {
    /// File-system block size in bytes (the PFS unit of transfer).
    pub block_size: u64,
    /// Disk partition capacity in blocks.
    pub capacity_blocks: u64,
    /// Buffer cache capacity in blocks (0 = cache nothing).
    pub cache_blocks: usize,
    /// Server-side memory bandwidth for cache→buffer copies, bytes/sec.
    pub copy_bw: f64,
    /// Charged per metadata operation (create, allocation, lookup miss).
    pub metadata_op: SimDuration,
}

impl UfsParams {
    /// Paragon-flavoured defaults: 64 KB blocks, 512 MB partition, 64-block
    /// (4 MB) cache, ~60 MB/s server memcpy, 500 µs metadata ops.
    pub fn paragon() -> Self {
        UfsParams {
            block_size: 64 * 1024,
            capacity_blocks: 8192,
            cache_blocks: 64,
            copy_bw: 60e6,
            metadata_op: SimDuration::from_micros(500),
        }
    }
}

/// UFS failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UfsError {
    /// No such file.
    NotFound,
    /// Read past end of file.
    Eof { size: u64, requested_end: u64 },
    /// Allocation failed.
    NoSpace(NoSpace),
    /// File already exists (create).
    Exists(InodeId),
    /// The device under the file system failed the request.
    Disk(DiskError),
    /// A file block inside the checked size had no disk mapping — the
    /// inode's block map is inconsistent.
    Unmapped { block: u64 },
}

impl std::fmt::Display for UfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UfsError::NotFound => write!(f, "file not found"),
            UfsError::Eof {
                size,
                requested_end,
            } => write!(f, "read past EOF (size {size}, wanted {requested_end})"),
            UfsError::NoSpace(n) => write!(
                f,
                "no space: wanted {} blocks, largest free run {}",
                n.wanted, n.largest_free
            ),
            UfsError::Exists(id) => write!(f, "file exists as inode {}", id.0),
            UfsError::Disk(e) => write!(f, "disk error: {e}"),
            UfsError::Unmapped { block } => write!(f, "file block {block} has no disk mapping"),
        }
    }
}

impl std::error::Error for UfsError {}

/// Cumulative UFS counters.
#[derive(Debug, Default, Clone)]
pub struct UfsStats {
    /// Fast-path reads served.
    pub direct_reads: u64,
    /// Cached reads served.
    pub cached_reads: u64,
    /// Device read requests actually issued (after coalescing).
    pub disk_requests: u64,
    /// Blocks whose device read was merged into a preceding request.
    pub blocks_coalesced: u64,
    /// Bytes returned to callers.
    pub bytes_read: u64,
    /// Bytes written through.
    pub bytes_written: u64,
    /// Dirty blocks written back on eviction or sync.
    pub writebacks: u64,
}

struct Inner {
    inodes: InodeTable,
    alloc: ExtentAllocator,
    cache: BlockCache,
    stats: UfsStats,
}

/// One I/O node's file system. Clone freely; clones share state.
#[derive(Clone)]
pub struct Ufs {
    sim: Sim,
    raid: RaidArray,
    params: Rc<UfsParams>,
    inner: Rc<RefCell<Inner>>,
}

impl Ufs {
    /// Mount a file system on `raid`.
    pub fn new(sim: &Sim, raid: RaidArray, params: UfsParams) -> Self {
        assert!(params.block_size > 0, "zero block size");
        Ufs {
            sim: sim.clone(),
            raid,
            inner: Rc::new(RefCell::new(Inner {
                inodes: InodeTable::new(),
                alloc: ExtentAllocator::new(params.capacity_blocks),
                cache: BlockCache::new(params.cache_blocks),
                stats: UfsStats::default(),
            })),
            params: Rc::new(params),
        }
    }

    /// File-system block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.params.block_size
    }

    /// Create an empty file; charges one metadata operation.
    pub async fn create(&self, name: &str) -> Result<InodeId, UfsError> {
        self.sim.sleep(self.params.metadata_op).await;
        self.inner
            .borrow_mut()
            .inodes
            .create(name)
            .map_err(UfsError::Exists)
    }

    /// Find a file by name (no charge: the PFS server caches handles).
    pub fn lookup(&self, name: &str) -> Option<InodeId> {
        self.inner.borrow().inodes.lookup(name)
    }

    /// Current size of `id` in bytes.
    pub fn size(&self, id: InodeId) -> Result<u64, UfsError> {
        self.inner
            .borrow()
            .inodes
            .get(id)
            .map(|i| i.size)
            .ok_or(UfsError::NotFound)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> UfsStats {
        self.inner.borrow().stats.clone()
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.borrow().cache.stats()
    }

    fn bs(&self) -> u64 {
        self.params.block_size
    }

    /// Ensure blocks covering `[0, end_byte)` are mapped, allocating the
    /// tail as contiguously as the allocator allows.
    fn ensure_mapped(&self, id: InodeId, end_byte: u64) -> Result<(), UfsError> {
        let bs = self.bs();
        let need_blocks = end_byte.div_ceil(bs);
        let mut inner = self.inner.borrow_mut();
        let inner = &mut *inner;
        let inode = inner.inodes.get_mut(id).ok_or(UfsError::NotFound)?;
        let have = inode.mapped_blocks();
        if need_blocks > have {
            let extents = inner
                .alloc
                .alloc(need_blocks - have)
                .map_err(UfsError::NoSpace)?;
            for e in extents {
                inode.push_extent(e);
            }
        }
        Ok(())
    }

    /// Write-through write at `offset`, growing the file as needed.
    pub async fn write(&self, id: InodeId, offset: u64, data: Bytes) -> Result<(), UfsError> {
        if data.is_empty() {
            return Ok(());
        }
        let end = offset + data.len() as u64;
        self.ensure_mapped(id, end)?;
        let bs = self.bs();
        let first_block = offset / bs;
        let last_block = (end - 1) / bs;
        let runs = {
            let mut inner = self.inner.borrow_mut();
            let inner = &mut *inner;
            let inode = inner.inodes.get_mut(id).ok_or(UfsError::NotFound)?;
            inode.size = inode.size.max(end);
            inner.stats.bytes_written += data.len() as u64;
            inode
                .map_blocks(first_block, last_block - first_block + 1)
                .ok_or(UfsError::Unmapped { block: first_block })?
        };
        // Issue per-run device writes concurrently. Partial first/last
        // blocks are handled by writing at the exact byte offset; the
        // sparse store underneath merges correctly.
        let mut handles = Vec::with_capacity(runs.len());
        for run in &runs {
            let (piece, disk_off) = self.slice_for_run(run, offset, &data);
            let raid = self.raid.clone();
            handles.push(self.sim.spawn_named("ufs-write-run", async move {
                raid.write(disk_off, piece).await
            }));
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.disk_requests += runs.len() as u64;
        }
        for h in handles {
            h.await.map_err(UfsError::Disk)?;
        }
        // Keep the cache coherent: refresh any resident blocks we overwrote.
        {
            let mut inner = self.inner.borrow_mut();
            for b in first_block..=last_block {
                let key = BlockKey {
                    inode: id,
                    block: b,
                };
                if inner.cache.peek(key).is_some() {
                    // Simplest coherent action: drop the stale block.
                    inner.cache.purge_block(key);
                }
            }
        }
        Ok(())
    }

    /// Byte slice of `data` covered by `run`, plus the device byte offset
    /// it lands at, clipped to the write range.
    fn slice_for_run(&self, run: &DiskRun, write_off: u64, data: &Bytes) -> (Bytes, u64) {
        let bs = self.bs();
        let run_start_byte = run.file_block * bs;
        let run_end_byte = (run.file_block + run.len) * bs;
        let write_end = write_off + data.len() as u64;
        let lo = run_start_byte.max(write_off);
        let hi = run_end_byte.min(write_end);
        let piece = data.slice((lo - write_off) as usize..(hi - write_off) as usize);
        let disk_off = run.disk_block * bs + (lo - run_start_byte);
        (piece, disk_off)
    }

    /// Fast-path read: no cache, disk runs coalesced, zero extra copies.
    pub async fn read_direct(&self, id: InodeId, offset: u64, len: u32) -> Result<Bytes, UfsError> {
        self.read_direct_req(id, offset, len, 0).await
    }

    /// [`Ufs::read_direct`] under flight-recorder request context `req`
    /// (threaded down to the per-spindle DiskStart/DiskDone events).
    pub async fn read_direct_req(
        &self,
        id: InodeId,
        offset: u64,
        len: u32,
        req: ReqId,
    ) -> Result<Bytes, UfsError> {
        let runs = self.plan_read(id, offset, len)?;
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.direct_reads += 1;
            inner.stats.bytes_read += len as u64;
            inner.stats.disk_requests += runs.len() as u64;
            let total_blocks: u64 = runs.iter().map(|r| r.len).sum();
            inner.stats.blocks_coalesced += total_blocks - runs.len() as u64;
        }
        let bs = self.bs();
        let end = offset + len as u64;
        let mut handles = Vec::with_capacity(runs.len());
        for run in &runs {
            let run_start_byte = run.file_block * bs;
            let run_end_byte = (run.file_block + run.len) * bs;
            let lo = run_start_byte.max(offset);
            let hi = run_end_byte.min(end);
            let disk_off = run.disk_block * bs + (lo - run_start_byte);
            let raid = self.raid.clone();
            let plen = (hi - lo) as u32;
            handles.push((
                (lo - offset) as usize,
                self.sim.spawn_named("ufs-read-run", async move {
                    raid.read_req(disk_off, plen, req).await
                }),
            ));
        }
        // Zero-copy fast path: a single device run covers the whole byte
        // range, so its reply *is* the result — no gather buffer. The run
        // still goes through the same spawned task as the general path so
        // event interleaving (and the trace hash) is unchanged.
        if handles.len() == 1 && handles[0].0 == 0 {
            if let Some((_, h)) = handles.pop() {
                let data = h.await.map_err(UfsError::Disk)?;
                debug_assert_eq!(data.len(), len as usize);
                return Ok(data);
            }
        }
        let mut out = BytesMut::zeroed(len as usize);
        for (at, h) in handles {
            let data = h.await.map_err(UfsError::Disk)?;
            out[at..at + data.len()].copy_from_slice(&data);
        }
        Ok(out.freeze())
    }

    /// Buffered read through the LRU cache; charges a cache→buffer copy.
    pub async fn read_cached(&self, id: InodeId, offset: u64, len: u32) -> Result<Bytes, UfsError> {
        self.read_cached_req(id, offset, len, 0).await
    }

    /// [`Ufs::read_cached`] under flight-recorder request context `req`.
    pub async fn read_cached_req(
        &self,
        id: InodeId,
        offset: u64,
        len: u32,
        req: ReqId,
    ) -> Result<Bytes, UfsError> {
        let bs = self.bs();
        let end = offset + len as u64;
        self.check_bounds(id, offset, len)?;
        let first_block = offset / bs;
        let last_block = (end - 1) / bs;
        self.inner.borrow_mut().stats.cached_reads += 1;

        // Single-block fast path — the dominant buffered shape, since the
        // PFS transfer unit equals the UFS block size: serve hit or miss
        // with a zero-copy slice of the cached block instead of gathering
        // through a fresh buffer. Device reads, cache accounting, and the
        // copy charge all happen exactly as on the general path below.
        if first_block == last_block {
            let key = BlockKey {
                inode: id,
                block: first_block,
            };
            let at = (offset - first_block * bs) as usize;
            let cached = self.inner.borrow_mut().cache.get(key);
            let block_data = match cached {
                Some(data) => data,
                None => {
                    let runs = {
                        let inner = self.inner.borrow();
                        let inode = inner.inodes.get(id).ok_or(UfsError::NotFound)?;
                        inode
                            .map_blocks(first_block, 1)
                            .ok_or(UfsError::Unmapped { block: first_block })?
                    };
                    {
                        let mut inner = self.inner.borrow_mut();
                        inner.stats.disk_requests += runs.len() as u64;
                        inner.stats.blocks_coalesced += 1 - runs.len() as u64;
                    }
                    let mut fetched = None;
                    for run in runs {
                        let data = self
                            .raid
                            .read_req(run.disk_block * bs, (run.len * bs) as u32, req)
                            .await
                            .map_err(UfsError::Disk)?;
                        let victim = self
                            .inner
                            .borrow_mut()
                            .cache
                            .insert_clean(key, data.clone());
                        fetched = Some(data);
                        if let Some(v) = victim {
                            if v.dirty {
                                self.write_back(v.key, v.data).await?;
                            }
                        }
                    }
                    fetched.ok_or(UfsError::Unmapped { block: first_block })?
                }
            };
            self.sim
                .sleep(SimDuration::for_bytes(len as u64, self.params.copy_bw))
                .await;
            self.inner.borrow_mut().stats.bytes_read += len as u64;
            return Ok(block_data.slice(at..at + len as usize));
        }

        let mut out = BytesMut::zeroed(len as usize);
        // Identify misses first (batch them into runs), then fill.
        let mut missing: Vec<u64> = Vec::new();
        for b in first_block..=last_block {
            let key = BlockKey {
                inode: id,
                block: b,
            };
            let cached = self.inner.borrow_mut().cache.get(key);
            match cached {
                Some(data) => self.place_block(&mut out, b, &data, offset, end),
                None => missing.push(b),
            }
        }
        // Coalesce missing blocks into device runs and fill the cache.
        // paragon-lint: allow(P1) — i and j stay < missing.len() by the loop
        // conditions; the window walk never leaves the vec
        let mut i = 0;
        while i < missing.len() {
            let mut j = i;
            while j + 1 < missing.len() && missing[j + 1] == missing[j] + 1 {
                j += 1;
            }
            let run_first = missing[i];
            let run_len = (j - i + 1) as u64;
            let runs = {
                let inner = self.inner.borrow();
                let inode = inner.inodes.get(id).ok_or(UfsError::NotFound)?;
                inode
                    .map_blocks(run_first, run_len)
                    .ok_or(UfsError::Unmapped { block: run_first })?
            };
            {
                let mut inner = self.inner.borrow_mut();
                inner.stats.disk_requests += runs.len() as u64;
                inner.stats.blocks_coalesced += run_len - runs.len() as u64;
            }
            for run in runs {
                let data = self
                    .raid
                    .read_req(run.disk_block * bs, (run.len * bs) as u32, req)
                    .await
                    .map_err(UfsError::Disk)?;
                for k in 0..run.len {
                    let b = run.file_block + k;
                    let block_data = data.slice((k * bs) as usize..((k + 1) * bs) as usize);
                    self.place_block(&mut out, b, &block_data, offset, end);
                    let victim = self.inner.borrow_mut().cache.insert_clean(
                        BlockKey {
                            inode: id,
                            block: b,
                        },
                        block_data,
                    );
                    if let Some(v) = victim {
                        if v.dirty {
                            self.write_back(v.key, v.data).await?;
                        }
                    }
                }
            }
            i = j + 1;
        }
        // The buffered path pays a memory copy cache → caller.
        self.sim
            .sleep(SimDuration::for_bytes(len as u64, self.params.copy_bw))
            .await;
        self.inner.borrow_mut().stats.bytes_read += len as u64;
        Ok(out.freeze())
    }

    /// Buffered write: dirty the cache only; data reaches disk on eviction
    /// or [`Ufs::sync`]. Whole-block writes only (the PFS write path always
    /// writes block multiples when buffering is enabled).
    pub async fn write_cached(
        &self,
        id: InodeId,
        offset: u64,
        data: Bytes,
    ) -> Result<(), UfsError> {
        let bs = self.bs();
        assert!(
            offset.is_multiple_of(bs) && (data.len() as u64).is_multiple_of(bs),
            "write_cached requires block-aligned extents"
        );
        let end = offset + data.len() as u64;
        self.ensure_mapped(id, end)?;
        {
            let mut inner = self.inner.borrow_mut();
            let inode = inner.inodes.get_mut(id).ok_or(UfsError::NotFound)?;
            inode.size = inode.size.max(end);
            inner.stats.bytes_written += data.len() as u64;
        }
        let nblocks = data.len() as u64 / bs;
        for k in 0..nblocks {
            let b = offset / bs + k;
            let block_data = data.slice((k * bs) as usize..((k + 1) * bs) as usize);
            let victim = self.inner.borrow_mut().cache.insert_dirty(
                BlockKey {
                    inode: id,
                    block: b,
                },
                block_data,
            );
            if let Some(v) = victim {
                if v.dirty {
                    self.write_back(v.key, v.data).await?;
                }
            }
        }
        // Cache write costs one memcpy.
        self.sim
            .sleep(SimDuration::for_bytes(
                data.len() as u64,
                self.params.copy_bw,
            ))
            .await;
        Ok(())
    }

    /// Flush all dirty cache blocks to disk.
    pub async fn sync(&self) -> Result<(), UfsError> {
        let dirty = self.inner.borrow_mut().cache.take_dirty();
        for (key, data) in dirty {
            self.write_back(key, data).await?;
        }
        Ok(())
    }

    async fn write_back(&self, key: BlockKey, data: Bytes) -> Result<(), UfsError> {
        let bs = self.bs();
        let disk_block = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.writebacks += 1;
            inner
                .inodes
                .get(key.inode)
                .and_then(|i| i.map_block(key.block))
        };
        if let Some(db) = disk_block {
            self.raid
                .write(db * bs, data)
                .await
                .map_err(UfsError::Disk)?;
        }
        // A vanished inode means the file was removed; drop the data.
        Ok(())
    }

    fn check_bounds(&self, id: InodeId, offset: u64, len: u32) -> Result<(), UfsError> {
        let size = self.size(id)?;
        let end = offset + len as u64;
        if end > size {
            return Err(UfsError::Eof {
                size,
                requested_end: end,
            });
        }
        Ok(())
    }

    fn plan_read(&self, id: InodeId, offset: u64, len: u32) -> Result<Vec<DiskRun>, UfsError> {
        assert!(len > 0, "zero-length read");
        self.check_bounds(id, offset, len)?;
        let bs = self.bs();
        let end = offset + len as u64;
        let first_block = offset / bs;
        let last_block = (end - 1) / bs;
        let inner = self.inner.borrow();
        let inode = inner.inodes.get(id).ok_or(UfsError::NotFound)?;
        inode
            .map_blocks(first_block, last_block - first_block + 1)
            .ok_or(UfsError::Unmapped { block: first_block })
    }

    fn place_block(&self, out: &mut BytesMut, block: u64, data: &Bytes, offset: u64, end: u64) {
        let bs = self.bs();
        let block_start = block * bs;
        let lo = block_start.max(offset);
        let hi = (block_start + bs).min(end);
        let src = &data[(lo - block_start) as usize..(hi - block_start) as usize];
        out[(lo - offset) as usize..(hi - offset) as usize].copy_from_slice(src);
    }

    /// File-system consistency check (an `fsck`): verifies that no two
    /// inodes share a disk block, that every mapped block is inside the
    /// partition, and that the allocator's free count matches the space
    /// the inodes do not use. Returns the list of violations (empty =
    /// consistent). Cheap enough to run after failure-injection tests.
    pub fn check(&self) -> Vec<String> {
        use std::collections::BTreeMap as Map;
        let inner = self.inner.borrow();
        let mut problems = Vec::new();
        let mut owner: Map<u64, InodeId> = Map::new();
        let mut mapped_total = 0u64;
        let mut ids: Vec<InodeId> = Vec::new();
        // Walk all inodes via the name table is not possible (names can
        // alias); walk ids 0..next by probing.
        for id in 0..u64::MAX {
            let id = InodeId(id);
            match inner.inodes.get(id) {
                Some(inode) => {
                    ids.push(id);
                    let bs = self.params.block_size;
                    if inode.size > inode.mapped_blocks() * bs {
                        problems.push(format!(
                            "inode {}: size {} exceeds mapped bytes {}",
                            id.0,
                            inode.size,
                            inode.mapped_blocks() * bs
                        ));
                    }
                    for e in &inode.extents {
                        if e.end() > inner.alloc.capacity() {
                            problems.push(format!("inode {}: extent {e} beyond partition", id.0));
                        }
                        for b in e.start..e.end() {
                            if let Some(prev) = owner.insert(b, id) {
                                if prev != id {
                                    problems.push(format!(
                                        "block {b} owned by inodes {} and {}",
                                        prev.0, id.0
                                    ));
                                }
                            }
                        }
                        mapped_total += e.len;
                    }
                }
                None => {
                    // Ids are allocated densely; the first gap past the
                    // live set ends the scan (removed files leave gaps,
                    // so scan a little further before giving up).
                    if id.0 > ids.last().map(|i| i.0).unwrap_or(0) + 64 {
                        break;
                    }
                }
            }
        }
        let free = inner.alloc.free_blocks();
        if free + mapped_total != inner.alloc.capacity() {
            problems.push(format!(
                "accounting: {free} free + {mapped_total} mapped != {} capacity",
                inner.alloc.capacity()
            ));
        }
        problems
    }

    /// Remove a file: flush its dirty blocks, free its extents.
    pub async fn remove(&self, id: InodeId) -> Result<(), UfsError> {
        self.sim.sleep(self.params.metadata_op).await;
        let dirty = self.inner.borrow_mut().cache.purge_inode(id);
        for (key, data) in dirty {
            self.write_back(key, data).await?;
        }
        let mut inner = self.inner.borrow_mut();
        let inode = inner.inodes.remove(id).ok_or(UfsError::NotFound)?;
        for e in inode.extents {
            inner.alloc.free(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_disk::{DiskParams, SchedPolicy};

    fn test_fs(sim: &Sim) -> Ufs {
        let raid = RaidArray::new(
            sim,
            DiskParams::ideal(10e6),
            SchedPolicy::Fifo,
            3,
            16 * 1024,
            "ufs-test",
        );
        let mut p = UfsParams::paragon();
        p.block_size = 4096;
        p.cache_blocks = 8;
        p.metadata_op = SimDuration::ZERO;
        Ufs::new(sim, raid, p)
    }

    fn pattern(len: usize, salt: u8) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn write_then_direct_read_roundtrips() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            let data = pattern(20_000, 3);
            f2.write(id, 0, data.clone()).await.unwrap();
            let back = f2.read_direct(id, 0, 20_000).await.unwrap();
            back == data
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn unaligned_reads_slice_correctly() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            let data = pattern(30_000, 9);
            f2.write(id, 0, data.clone()).await.unwrap();
            let back = f2.read_direct(id, 5_000, 9_000).await.unwrap();
            back[..] == data[5_000..14_000]
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn cached_read_roundtrips_and_hits_on_reread() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            let data = pattern(8192, 1);
            f2.write(id, 0, data.clone()).await.unwrap();
            let a = f2.read_cached(id, 0, 8192).await.unwrap();
            let b = f2.read_cached(id, 0, 8192).await.unwrap();
            a == data && b == data
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
        let cs = fs.cache_stats();
        assert_eq!(cs.misses, 2); // two blocks missed once
        assert_eq!(cs.hits, 2); // and hit on the re-read
    }

    #[test]
    fn read_past_eof_is_an_error() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            f2.write(id, 0, pattern(100, 0)).await.unwrap();
            f2.read_direct(id, 50, 100).await
        });
        sim.run();
        assert_eq!(
            h.try_take(),
            Some(Err(UfsError::Eof {
                size: 100,
                requested_end: 150
            }))
        );
    }

    #[test]
    fn contiguous_file_reads_are_coalesced() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            f2.write(id, 0, pattern(64 * 1024, 2)).await.unwrap();
            // 16 file blocks in one extent: a full-file direct read must be
            // a single device request.
            f2.read_direct(id, 0, 64 * 1024).await.unwrap();
        });
        sim.run();
        let st = fs.stats();
        assert_eq!(st.direct_reads, 1);
        assert_eq!(st.blocks_coalesced, 15);
    }

    #[test]
    fn cached_write_reaches_disk_after_sync() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            let data = pattern(8192, 7);
            f2.write_cached(id, 0, data.clone()).await.unwrap();
            f2.sync().await.unwrap();
            // Fast path bypasses the cache, so this proves disk content.
            let back = f2.read_direct(id, 0, 8192).await.unwrap();
            back == data
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
        assert!(fs.stats().writebacks >= 2);
    }

    #[test]
    fn write_invalidates_stale_cache() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            f2.write(id, 0, pattern(4096, 1)).await.unwrap();
            let _warm = f2.read_cached(id, 0, 4096).await.unwrap();
            let fresh = pattern(4096, 99);
            f2.write(id, 0, fresh.clone()).await.unwrap();
            let back = f2.read_cached(id, 0, 4096).await.unwrap();
            back == fresh
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn remove_frees_space_for_reuse() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            // Partition is 8192 × 4 KB = 32 MB; write 2 files of 12 MB each,
            // remove one, and the third must fit.
            let a = f2.create("a").await.unwrap();
            f2.write(a, 0, Bytes::from(vec![1u8; 12 << 20]))
                .await
                .unwrap();
            let b = f2.create("b").await.unwrap();
            f2.write(b, 0, Bytes::from(vec![2u8; 12 << 20]))
                .await
                .unwrap();
            f2.remove(a).await.unwrap();
            let c = f2.create("c").await.unwrap();
            f2.write(c, 0, Bytes::from(vec![3u8; 12 << 20])).await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Ok(())));
    }

    #[test]
    fn fsck_passes_on_a_busy_filesystem() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        sim.spawn(async move {
            let a = f2.create("a").await.unwrap();
            f2.write(a, 0, pattern(40_000, 1)).await.unwrap();
            let b = f2.create("b").await.unwrap();
            f2.write(b, 10_000, pattern(30_000, 2)).await.unwrap();
            f2.remove(a).await.unwrap();
            let c = f2.create("c").await.unwrap();
            f2.write(c, 0, pattern(50_000, 3)).await.unwrap();
        });
        sim.run();
        assert_eq!(fs.check(), Vec::<String>::new());
    }

    #[test]
    fn sparse_write_reads_zero_holes() {
        let sim = Sim::new(1);
        let fs = test_fs(&sim);
        let f2 = fs.clone();
        let h = sim.spawn(async move {
            let id = f2.create("f").await.unwrap();
            // Write at 16 KB, leaving a 16 KB hole at the front.
            f2.write(id, 16 * 1024, pattern(4096, 5)).await.unwrap();
            let hole = f2.read_direct(id, 0, 4096).await.unwrap();
            hole.iter().all(|&b| b == 0)
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }
}
