//! Aligned text tables — the experiment binaries print the paper's tables
//! with these.

use std::fmt::Display;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width does not match table {:?}",
            self.title
        );
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numbers-ish columns by always right-aligning;
                // headers read fine either way.
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            out.push('\n');
        };
        line(&mut out, &self.columns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["size", "bw"]);
        t.row(&["64", "3.2"]).row(&["1024", "19.7"]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.cell(1, 1), "19.7");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1,5", "plain"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",plain\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }
}
