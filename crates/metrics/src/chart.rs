//! ASCII line charts — the experiment binaries draw the paper's figures
//! with these (one glyph per series, shared axes).

/// One data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, any order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New series from points.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_owned(),
            points,
        }
    }
}

/// A multi-series ASCII chart.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

const GLYPHS: &[u8] = b"*o+x#@%&";

impl AsciiChart {
    /// New chart with the given plot-area size (in characters).
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        AsciiChart {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            width: 64,
            height: 18,
            series: Vec::new(),
        }
    }

    /// Override the plot-area size.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 4, "chart too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Add a series.
    pub fn series(mut self, s: Series) -> Self {
        assert!(
            self.series.len() < GLYPHS.len(),
            "too many series for distinct glyphs"
        );
        self.series.push(s);
        self
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self.series.iter().flat_map(|s| s.points.clone()).collect();
        if pts.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (0.0f64, f64::NEG_INFINITY); // y axis anchored at 0
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < f64::EPSILON {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < f64::EPSILON {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![b' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si];
            for &(x, y) in &s.points {
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx] = glyph;
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{}   [y: {}]\n", self.title, self.y_label));
        for (i, row) in grid.iter().enumerate() {
            let yv = y1 - (y1 - y0) * i as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{yv:>9.2} |"));
            out.push_str(std::str::from_utf8(row).expect("ascii grid"));
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10}{:<w$.2}{:>8.2}   [x: {}]\n",
            "",
            x0,
            x1,
            self.x_label,
            w = self.width - 6
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "{:>11} {} = {}\n",
                "", GLYPHS[si] as char, s.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_bounds() {
        let chart = AsciiChart::new("t", "x", "y")
            .size(20, 6)
            .series(Series::new("a", vec![(0.0, 0.0), (10.0, 5.0)]))
            .series(Series::new("b", vec![(5.0, 2.5)]));
        let s = chart.render();
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("a"));
        assert!(s.contains("b"));
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let chart = AsciiChart::new("t", "x", "y");
        assert!(chart.render().contains("no data"));
    }

    #[test]
    fn constant_series_renders() {
        let chart =
            AsciiChart::new("t", "x", "y").series(Series::new("c", vec![(1.0, 3.0), (2.0, 3.0)]));
        let s = chart.render();
        assert!(s.contains('*'));
    }
}
