//! A small hand-rolled JSON value type.
//!
//! The harness needs exactly two JSON jobs — writing experiment records
//! and reading them back — and pulling a serialization framework in for
//! that would break the hermetic build (no registry access in tier-1
//! verify). This module implements the JSON data model directly: a
//! [`Json`] value, a strict parser, and a pretty printer. Numbers are
//! `f64` (like JavaScript); non-finite values serialize as `null`.

use std::collections::BTreeMap;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with sorted keys (deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document. Strict: trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Pretty-print with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest-roundtrip float formatting; integers
                    // print without a fraction, which JSON permits.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 == map.len() { "\n" } else { ",\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object map, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_word("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_word("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'n') => {
                if self.eat_word("null") {
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_owned())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-1.5", "3.141592653589793"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(v.pretty().trim()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let mut obj = BTreeMap::new();
        obj.insert("name".into(), Json::Str("tab\u{1} \"1\"\n".into()));
        obj.insert(
            "points".into(),
            Json::Arr(vec![Json::Num(1.25), Json::Null, Json::Bool(true)]),
        );
        obj.insert("empty_arr".into(), Json::Arr(vec![]));
        obj.insert("empty_obj".into(), Json::Obj(BTreeMap::new()));
        let v = Json::Obj(obj);
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 2.9, 123456789.123456] {
            let v = Json::Num(f);
            let back = Json::parse(v.pretty().trim()).unwrap();
            assert_eq!(back.as_f64(), Some(f));
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::Str("héllo → 世界".into());
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["{", "[1,]", "\"abc", "{\"a\":}", "12 34", "nul"] {
            assert!(Json::parse(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a": [1, "x"], "b": 2.5}"#).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).unwrap()[1].as_str(),
            Some("x")
        );
        assert_eq!(v.as_obj().unwrap().len(), 2);
    }
}
