//! A small exact-quantile histogram for latency distributions.
//!
//! The harness collects at most a few thousand per-request access times
//! per run, so we simply keep the samples and sort on demand — exact
//! quantiles, no binning error, and no extra dependency.

/// Collected samples with exact quantile queries.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Non-finite samples are a caller bug.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample {v}");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Exact quantile `q ∈ [0, 1]` (nearest-rank). `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Option<f64> {
        self.quantile(0.0).map(|_| {
            self.ensure_sorted();
            self.samples[0]
        })
    }

    /// Largest sample.
    pub fn max(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(*self.samples.last().expect("nonempty"))
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// `(p50, p90, p99)` in one call — the summary the tables print.
    pub fn percentiles(&mut self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentiles(), None);
    }

    #[test]
    fn recording_after_query_resorts() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.quantile(0.5), Some(10.0));
        h.record(1.0);
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn p99_picks_the_tail() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let (p50, p90, p99) = h.percentiles().unwrap();
        assert_eq!((p50, p90, p99), (50.0, 90.0, 99.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut h = Histogram::new();
        h.record(7.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.5), "q={q}");
        }
        assert_eq!(h.min(), Some(7.5));
        assert_eq!(h.max(), Some(7.5));
        assert_eq!(h.mean(), Some(7.5));
        assert_eq!(h.percentiles(), Some((7.5, 7.5, 7.5)));
    }

    #[test]
    fn saturated_counts_of_one_value_stay_exact() {
        // A gauge stuck at one level produces thousands of identical
        // samples; nearest-rank must return that level at every
        // quantile with no drift from summation order.
        let mut h = Histogram::new();
        for _ in 0..10_000 {
            h.record(3.0);
        }
        assert_eq!(h.len(), 10_000);
        assert_eq!(h.percentiles(), Some((3.0, 3.0, 3.0)));
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.quantile(1.0 / 10_001.0), Some(3.0));
    }

    #[test]
    fn extreme_magnitudes_do_not_lose_rank_order() {
        let mut h = Histogram::new();
        for v in [f64::MAX, f64::MIN_POSITIVE, 0.0, -f64::MAX] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(-f64::MAX));
        assert_eq!(h.max(), Some(f64::MAX));
        assert_eq!(h.quantile(0.5), Some(0.0));
    }
}
