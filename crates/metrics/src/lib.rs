//! # paragon-metrics — tables, ASCII figures, and experiment records
//!
//! Rendering and aggregation for the experiment harness: aligned-text
//! [`Table`]s (the paper's tables), multi-series [`AsciiChart`]s (the
//! paper's figures), JSON [`ExperimentRecord`]s for the
//! paper-vs-measured bookkeeping, the numeric [`summary`] helpers, and
//! the sim-clock telemetry [`registry`] (typed Counter/Gauge/Histogram
//! instruments sampled at a fixed simulated-time cadence).

mod chart;
mod hist;
pub mod json;
mod record;
pub mod registry;
mod table;

pub use chart::{AsciiChart, Series};
pub use hist::Histogram;
pub use json::Json;
pub use record::{summary, DataPoint, ExperimentRecord};
pub use registry::{time_mean, HistSummary, MetricsRegistry, MetricsSnapshot, Sampler};
pub use table::Table;
