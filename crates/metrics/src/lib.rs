//! # paragon-metrics — tables, ASCII figures, and experiment records
//!
//! Rendering and aggregation for the experiment harness: aligned-text
//! [`Table`]s (the paper's tables), multi-series [`AsciiChart`]s (the
//! paper's figures), JSON [`ExperimentRecord`]s for the
//! paper-vs-measured bookkeeping, and the numeric [`summary`] helpers.

mod chart;
mod hist;
pub mod json;
mod record;
mod table;

pub use chart::{AsciiChart, Series};
pub use hist::Histogram;
pub use json::Json;
pub use record::{summary, DataPoint, ExperimentRecord};
pub use table::Table;
