//! Machine-readable experiment records (JSON via [`crate::json`]).
//!
//! Every experiment binary emits one [`ExperimentRecord`] per run so the
//! paper-vs-measured comparison in `EXPERIMENTS.md` can be regenerated
//! mechanically.

use std::collections::BTreeMap;

use crate::json::Json;

/// One measured data point.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Point coordinates/settings, e.g. `{"request_kb": "64"}`.
    pub params: BTreeMap<String, String>,
    /// Measured values, e.g. `{"bw_mb_s": 3.17, "hit_ratio": 0.96}`.
    pub values: BTreeMap<String, f64>,
}

/// One experiment's full record.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id from DESIGN.md (e.g. "TAB1", "FIG4").
    pub id: String,
    /// What the experiment reproduces.
    pub description: String,
    /// Global configuration (machine shape, calibration name, seed …).
    pub config: BTreeMap<String, String>,
    /// Measured points.
    pub points: Vec<DataPoint>,
}

impl ExperimentRecord {
    /// Start a record.
    pub fn new(id: &str, description: &str) -> Self {
        ExperimentRecord {
            id: id.to_owned(),
            description: description.to_owned(),
            config: BTreeMap::new(),
            points: Vec::new(),
        }
    }

    /// Add a config entry.
    pub fn config(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.config.insert(key.to_owned(), value.to_string());
        self
    }

    /// Add a data point from `(param, value)` slices.
    pub fn point(&mut self, params: &[(&str, &str)], values: &[(&str, f64)]) -> &mut Self {
        self.points.push(DataPoint {
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            values: values.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        });
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("id".to_owned(), Json::Str(self.id.clone()));
        root.insert(
            "description".to_owned(),
            Json::Str(self.description.clone()),
        );
        root.insert(
            "config".to_owned(),
            Json::Obj(
                self.config
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        );
        root.insert(
            "points".to_owned(),
            Json::Arr(
                self.points
                    .iter()
                    .map(|p| {
                        let mut obj = BTreeMap::new();
                        obj.insert(
                            "params".to_owned(),
                            Json::Obj(
                                p.params
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                    .collect(),
                            ),
                        );
                        obj.insert(
                            "values".to_owned(),
                            Json::Obj(
                                p.values
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        );
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        );
        Json::Obj(root).pretty()
    }

    /// Parse back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = Json::parse(s)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let str_map = |v: &Json, key: &str| -> Result<BTreeMap<String, String>, String> {
            v.get(key)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("missing object field {key:?}"))?
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_owned()))
                        .ok_or_else(|| format!("{key}.{k} is not a string"))
                })
                .collect()
        };
        let points = v
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing array field \"points\"".to_owned())?
            .iter()
            .map(|p| {
                let values = p
                    .get("values")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| "point missing \"values\"".to_owned())?
                    .iter()
                    .map(|(k, val)| {
                        val.as_f64()
                            .map(|f| (k.clone(), f))
                            .ok_or_else(|| format!("values.{k} is not a number"))
                    })
                    .collect::<Result<_, String>>()?;
                Ok(DataPoint {
                    params: str_map(p, "params")?,
                    values,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(ExperimentRecord {
            id: str_field("id")?,
            description: str_field("description")?,
            config: str_map(&v, "config")?,
            points,
        })
    }
}

/// Numeric summary helpers used across the harness.
pub mod summary {
    /// Arithmetic mean; zero for an empty slice.
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Smallest value; +inf for an empty slice.
    pub fn min(xs: &[f64]) -> f64 {
        xs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest value; -inf for an empty slice.
    pub fn max(xs: &[f64]) -> f64 {
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation; zero for fewer than two samples.
    pub fn stddev(xs: &[f64]) -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let m = mean(xs);
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    /// Relative spread `(max - min) / mean`; zero when degenerate. The
    /// paper's "benefits should be equally distributed amongst the
    /// processors" check uses this across per-node bandwidths.
    pub fn imbalance(xs: &[f64]) -> f64 {
        let m = mean(xs);
        if xs.is_empty() || m == 0.0 {
            0.0
        } else {
            (max(xs) - min(xs)) / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::summary::*;
    use super::*;

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = ExperimentRecord::new("TAB1", "I/O-bound read bandwidth");
        r.config("compute_nodes", 8).config("seed", 42).point(
            &[("request_kb", "64")],
            &[("bw_no_prefetch", 3.1), ("bw_prefetch", 2.9)],
        );
        let back = ExperimentRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.points[0].values["bw_prefetch"], 2.9);
    }

    #[test]
    fn summary_statistics() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 8.0);
        assert!((stddev(&xs) - 2.23606797749979).abs() < 1e-12);
        assert!((imbalance(&xs) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(imbalance(&[]), 0.0);
    }
}
