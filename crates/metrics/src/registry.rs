//! A deterministic, sim-clock-driven metrics registry.
//!
//! The flight recorder answers *what happened to one request*; this
//! module answers *where time goes in aggregate*. Components expose live
//! instruments — cheap closures over their own `Rc<Cell<_>>` state or
//! stats snapshots — and register them here under stable dotted names.
//! A [`Sampler`] task scheduled on the simulation kernel then snapshots
//! every gauge at a fixed simulated-time cadence, producing time series
//! that are a pure function of the seed (BTreeMap-keyed, no ambient
//! clock, no allocation-order dependence).
//!
//! Instrument taxonomy:
//!
//! * **Gauge** — an instantaneous level (queue depth, bytes in flight,
//!   buffers held). Registered as a closure, polled by the sampler into
//!   a time series; the report derives time-weighted means from it.
//! * **Counter** — a monotone total (requests served, busy nanoseconds).
//!   Also a closure, but polled only twice: at the measured-phase start
//!   and at the end, so setup-phase activity (file population) is
//!   excluded by construction. The report sees the delta.
//! * **Histogram** — a distribution recorded after the run from
//!   per-request samples (access times, span phases); summarized as
//!   count/mean/min/max and exact p50/p90/p99.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use paragon_sim::{Sim, SimDuration};

use crate::hist::Histogram;
use crate::json::Json;

/// A polled instrument: reads the current value of a gauge or counter.
type Source = Rc<dyn Fn() -> f64>;

#[derive(Default)]
struct Inner {
    gauges: BTreeMap<String, Source>,
    counters: BTreeMap<String, Source>,
    hists: BTreeMap<String, Histogram>,
    /// Counter values at the measured-phase start.
    baseline: BTreeMap<String, f64>,
    /// Counter values at the measured-phase end.
    finals: BTreeMap<String, f64>,
    /// Sample timestamps, nanoseconds of simulated time.
    times: Vec<u64>,
    /// One time series per gauge, index-aligned with `times`.
    series: BTreeMap<String, Vec<f64>>,
    phase_start_ns: u64,
    phase_end_ns: u64,
}

/// The registry: instruments keyed by stable dotted names.
///
/// Clone freely — clones share the same instrument table.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Inner>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a gauge under `name`. The closure is polled on every
    /// sampler tick; it must be cheap and side-effect free.
    pub fn register_gauge(&self, name: &str, f: impl Fn() -> f64 + 'static) {
        let mut inner = self.inner.borrow_mut();
        let prev = inner.gauges.insert(name.to_string(), Rc::new(f));
        assert!(prev.is_none(), "duplicate gauge {name}");
    }

    /// Register a gauge backed by a fresh `Rc<Cell<i64>>` and hand the
    /// cell back for the instrumented component to mutate.
    pub fn gauge_cell(&self, name: &str) -> Rc<Cell<i64>> {
        let cell = Rc::new(Cell::new(0i64));
        let c = cell.clone();
        self.register_gauge(name, move || c.get() as f64);
        cell
    }

    /// Register a counter under `name`. The closure is polled at the
    /// measured-phase boundaries; the report sees `end − start`.
    pub fn register_counter(&self, name: &str, f: impl Fn() -> f64 + 'static) {
        let mut inner = self.inner.borrow_mut();
        let prev = inner.counters.insert(name.to_string(), Rc::new(f));
        assert!(prev.is_none(), "duplicate counter {name}");
    }

    /// Record one histogram sample under `name` (created on first use).
    pub fn record(&self, name: &str, v: f64) {
        self.inner
            .borrow_mut()
            .hists
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Poll every gauge into its time series, stamped `now_ns`.
    pub fn sample(&self, now_ns: u64) {
        // Collect sources first so gauge closures run without the
        // registry borrowed (a closure may consult a component that
        // itself holds a registry handle).
        let sources: Vec<(String, Source)> = {
            let inner = self.inner.borrow();
            inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        let values: Vec<(String, f64)> = sources.into_iter().map(|(k, f)| (k, f())).collect();
        let mut inner = self.inner.borrow_mut();
        inner.times.push(now_ns);
        for (k, v) in values {
            inner.series.entry(k).or_default().push(v);
        }
    }

    fn poll_counters(&self) -> Vec<(String, f64)> {
        let sources: Vec<(String, Source)> = {
            let inner = self.inner.borrow();
            inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        sources.into_iter().map(|(k, f)| (k, f())).collect()
    }

    /// Mark the measured-phase start: counters are snapshotted as the
    /// baseline and one gauge sample is taken.
    pub fn mark_phase_start(&self, now_ns: u64) {
        let polled = self.poll_counters();
        {
            let mut inner = self.inner.borrow_mut();
            inner.phase_start_ns = now_ns;
            inner.baseline = polled.into_iter().collect();
        }
        self.sample(now_ns);
    }

    /// Mark the measured-phase end: counters are snapshotted as finals
    /// and one last gauge sample is taken.
    pub fn finish(&self, now_ns: u64) {
        let polled = self.poll_counters();
        {
            let mut inner = self.inner.borrow_mut();
            inner.phase_end_ns = now_ns;
            inner.finals = polled.into_iter().collect();
        }
        self.sample(now_ns);
    }

    /// Measured-phase delta of counter `name` (0 when unknown).
    pub fn counter_delta(&self, name: &str) -> f64 {
        let inner = self.inner.borrow();
        inner.finals.get(name).copied().unwrap_or(0.0)
            - inner.baseline.get(name).copied().unwrap_or(0.0)
    }

    /// Freeze everything into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut inner = self.inner.borrow_mut();
        let counters = inner
            .finals
            .iter()
            .map(|(k, v)| {
                let base = inner.baseline.get(k).copied().unwrap_or(0.0);
                (k.clone(), v - base)
            })
            .collect();
        let hists = {
            // Summarizing sorts in place, hence the mutable walk.
            let mut out = BTreeMap::new();
            for (k, h) in inner.hists.iter_mut() {
                out.insert(k.clone(), HistSummary::of(h));
            }
            out
        };
        MetricsSnapshot {
            phase_start_ns: inner.phase_start_ns,
            phase_end_ns: inner.phase_end_ns,
            times_ns: inner.times.clone(),
            series: inner.series.clone(),
            counters,
            hists,
        }
    }
}

/// Five-number summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

impl HistSummary {
    /// Summarize `h` (zeros when empty).
    pub fn of(h: &mut Histogram) -> HistSummary {
        HistSummary {
            count: h.len(),
            mean: h.mean().unwrap_or(0.0),
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
            p50: h.quantile(0.50).unwrap_or(0.0),
            p90: h.quantile(0.90).unwrap_or(0.0),
            p99: h.quantile(0.99).unwrap_or(0.0),
        }
    }

    /// As a JSON object.
    pub fn to_json(&self) -> Json {
        let mut o = BTreeMap::new();
        o.insert("count".into(), Json::Num(self.count as f64));
        o.insert("mean".into(), Json::Num(self.mean));
        o.insert("min".into(), Json::Num(self.min));
        o.insert("max".into(), Json::Num(self.max));
        o.insert("p50".into(), Json::Num(self.p50));
        o.insert("p90".into(), Json::Num(self.p90));
        o.insert("p99".into(), Json::Num(self.p99));
        Json::Obj(o)
    }
}

/// Plain-data result of one instrumented run: what the sampler saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Measured-phase start, simulated nanoseconds.
    pub phase_start_ns: u64,
    /// Measured-phase end, simulated nanoseconds.
    pub phase_end_ns: u64,
    /// Sample timestamps (simulated nanoseconds), ascending.
    pub times_ns: Vec<u64>,
    /// One series per gauge, index-aligned with `times_ns`.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Measured-phase counter deltas.
    pub counters: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistSummary>,
}

impl MetricsSnapshot {
    /// Measured-phase length in seconds.
    pub fn elapsed_s(&self) -> f64 {
        (self.phase_end_ns.saturating_sub(self.phase_start_ns)) as f64 * 1e-9
    }

    /// Time-weighted mean of gauge `name` over the measured phase: the
    /// gauge holds each sampled value until the next tick (step
    /// interpolation). `None` for unknown gauges or degenerate phases.
    pub fn series_time_mean(&self, name: &str) -> Option<f64> {
        let vals = self.series.get(name)?;
        time_mean(&self.times_ns, vals)
    }

    /// Largest sampled value of gauge `name`.
    pub fn series_max(&self, name: &str) -> Option<f64> {
        self.series
            .get(name)?
            .iter()
            .copied()
            .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))))
    }
}

/// Step-interpolated time-weighted mean of `vals` sampled at `times`.
pub fn time_mean(times: &[u64], vals: &[f64]) -> Option<f64> {
    let n = times.len().min(vals.len());
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(vals[0]);
    }
    let span = times[n - 1].saturating_sub(times[0]);
    if span == 0 {
        return Some(vals[n - 1]);
    }
    let mut acc = 0.0;
    for i in 0..n - 1 {
        acc += vals[i] * times[i + 1].saturating_sub(times[i]) as f64;
    }
    Some(acc / span as f64)
}

/// Samples every registered gauge at a fixed simulated-time cadence.
///
/// The sampler is a plain task on the simulation kernel, so its ticks
/// interleave deterministically with the workload. It must be stopped
/// (via [`Sampler::stop`]) when the measured phase ends, otherwise it
/// would keep the simulation alive forever.
pub struct Sampler {
    stop: Rc<Cell<bool>>,
}

impl Sampler {
    /// Spawn the sampling task: one [`MetricsRegistry::sample`] now and
    /// then every `cadence` of simulated time until stopped.
    pub fn start(sim: &Sim, registry: &MetricsRegistry, cadence: SimDuration) -> Sampler {
        assert!(!cadence.is_zero(), "sampler cadence must be positive");
        let stop = Rc::new(Cell::new(false));
        let stop2 = stop.clone();
        let reg = registry.clone();
        let sim2 = sim.clone();
        sim.spawn_named("metrics-sampler", async move {
            loop {
                if stop2.get() {
                    break;
                }
                reg.sample(sim2.now().as_nanos());
                sim2.sleep(cadence).await;
            }
        });
        Sampler { stop }
    }

    /// Stop sampling; the pending wakeup exits without another sample.
    pub fn stop(&self) {
        self.stop.set(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::Sim;

    #[test]
    fn gauge_series_follow_the_sim_clock() {
        let sim = Sim::new(7);
        let reg = MetricsRegistry::new();
        let cell = reg.gauge_cell("q.depth");
        let sampler = Sampler::start(&sim, &reg, SimDuration::from_millis(10));
        let (s, c, smp) = (sim.clone(), cell.clone(), sampler);
        let r2 = reg.clone();
        sim.spawn(async move {
            r2.mark_phase_start(s.now().as_nanos());
            for i in 0..5i64 {
                c.set(i);
                s.sleep(SimDuration::from_millis(10)).await;
            }
            smp.stop();
            r2.finish(s.now().as_nanos());
        });
        let report = sim.run();
        assert_eq!(report.unfinished_tasks, 0, "sampler must not linger");
        let snap = reg.snapshot();
        let series = &snap.series["q.depth"];
        // Initial tick + phase-start + 5 cadence ticks + final sample.
        assert!(series.len() >= 6, "got {} samples", series.len());
        assert_eq!(snap.series_max("q.depth"), Some(4.0));
        let mean = snap.series_time_mean("q.depth").unwrap();
        assert!(mean > 0.0 && mean < 4.0, "time mean {mean}");
    }

    #[test]
    fn counters_are_phase_deltas() {
        let reg = MetricsRegistry::new();
        let total = Rc::new(Cell::new(100u64));
        let t = total.clone();
        reg.register_counter("reqs", move || t.get() as f64);
        reg.mark_phase_start(0);
        total.set(175);
        reg.finish(1_000);
        assert_eq!(reg.counter_delta("reqs"), 75.0);
        assert_eq!(reg.snapshot().counters["reqs"], 75.0);
        assert_eq!(reg.counter_delta("unknown"), 0.0);
    }

    #[test]
    fn time_mean_weights_by_interval() {
        // Value 0 for 90 ns then 10 for 10 ns → mean 1.0.
        assert_eq!(time_mean(&[0, 90, 100], &[0.0, 10.0, 10.0]), Some(1.0));
        assert_eq!(time_mean(&[], &[]), None);
        assert_eq!(time_mean(&[5], &[3.0]), Some(3.0));
        // Zero span degenerates to the last value.
        assert_eq!(time_mean(&[5, 5], &[1.0, 9.0]), Some(9.0));
    }

    #[test]
    fn hist_summary_summarizes() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let s = HistSummary::of(&mut h);
        assert_eq!((s.count, s.min, s.max), (100, 1.0, 100.0));
        assert_eq!((s.p50, s.p90, s.p99), (50.0, 90.0, 99.0));
        let j = s.to_json();
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "duplicate gauge")]
    fn duplicate_names_are_a_bug() {
        let reg = MetricsRegistry::new();
        reg.register_gauge("x", || 0.0);
        reg.register_gauge("x", || 1.0);
    }
}
